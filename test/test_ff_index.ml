open Dbp_sim
open Helpers

let test_push_query () =
  let t = Ff_index.create () in
  let s0 = Ff_index.push t ~residual:10 in
  let _s1 = Ff_index.push t ~residual:50 in
  let _s2 = Ff_index.push t ~residual:30 in
  check_int "slot ids" 0 s0;
  check_int "length" 3 (Ff_index.length t);
  Alcotest.(check (option int)) "need 5 -> leftmost" (Some 0) (Ff_index.first_fit t 5);
  Alcotest.(check (option int)) "need 20 -> slot 1" (Some 1) (Ff_index.first_fit t 20);
  Alcotest.(check (option int)) "need 40 -> slot 1" (Some 1) (Ff_index.first_fit t 40);
  Alcotest.(check (option int)) "need 60 -> none" None (Ff_index.first_fit t 60)

let test_set_deactivate () =
  let t = Ff_index.create () in
  ignore (Ff_index.push t ~residual:10);
  ignore (Ff_index.push t ~residual:20);
  Ff_index.set t 0 3;
  Alcotest.(check (option int)) "after set" (Some 1) (Ff_index.first_fit t 5);
  Ff_index.deactivate t 1;
  Alcotest.(check (option int)) "after deactivate" (Some 0) (Ff_index.first_fit t 3);
  Alcotest.(check (option int)) "nothing fits" None (Ff_index.first_fit t 5);
  check_int "residual reads -1" (-1) (Ff_index.residual t 1);
  Alcotest.(check (list int)) "active" [ 0 ] (Ff_index.active t)

let test_need_zero () =
  let t = Ff_index.create () in
  ignore (Ff_index.push t ~residual:0);
  Alcotest.(check (option int)) "zero-residual satisfies zero need" (Some 0)
    (Ff_index.first_fit t 0);
  Ff_index.deactivate t 0;
  Alcotest.(check (option int)) "deactivated slot never matches" None
    (Ff_index.first_fit t 0)

let test_growth () =
  let t = Ff_index.create () in
  for i = 0 to 99 do
    ignore (Ff_index.push t ~residual:i)
  done;
  check_int "length" 100 (Ff_index.length t);
  Alcotest.(check (option int)) "query across growth" (Some 99) (Ff_index.first_fit t 99);
  Alcotest.(check (option int)) "leftmost across growth" (Some 50) (Ff_index.first_fit t 50)

let test_bad_slot () =
  let t = Ff_index.create () in
  check_raises_invalid "set" (fun () -> Ff_index.set t 0 1);
  check_raises_invalid "negative need" (fun () -> Ff_index.first_fit t (-1));
  check_raises_invalid "negative need idx" (fun () -> Ff_index.first_fit_idx t (-1));
  check_raises_invalid "zero cap" (fun () -> Ff_index.create ~initial_cap:0 ())

(* The degenerate single-leaf geometry: tree.(1) is root and leaf at
   once, so updates have no internal node to propagate through. The old
   update_path guard skipped its whole body at this shape; growth out of
   it must also preserve values. *)
let test_cap_one () =
  let t = Ff_index.create ~initial_cap:1 () in
  check_int "empty query" (-1) (Ff_index.first_fit_idx t 0);
  ignore (Ff_index.push t ~residual:5);
  check_int "one leaf" 0 (Ff_index.first_fit_idx t 5);
  check_int "too big" (-1) (Ff_index.first_fit_idx t 6);
  Ff_index.set t 0 2;
  check_int "after set" (-1) (Ff_index.first_fit_idx t 3);
  ignore (Ff_index.push t ~residual:9);
  (* grown to cap 2 *)
  check_int "growth kept slot 0" 2 (Ff_index.residual t 0);
  check_int "query after growth" 1 (Ff_index.first_fit_idx t 3);
  Ff_index.deactivate t 1;
  check_int "deactivate propagates" (-1) (Ff_index.first_fit_idx t 3)

(* The resume query behind vector placement scans: leftmost fit at or
   after [from], so a candidate rejected on an extra dimension can be
   skipped without rescanning the prefix. *)
let test_fit_from () =
  let t = Ff_index.create () in
  ignore (Ff_index.push t ~residual:50);
  ignore (Ff_index.push t ~residual:10);
  ignore (Ff_index.push t ~residual:50);
  check_int "from 0 = plain query" (Ff_index.first_fit_idx t 20)
    (Ff_index.first_fit_idx_from t ~need:20 ~from:0);
  check_int "from 1 skips slot 0" 2 (Ff_index.first_fit_idx_from t ~need:20 ~from:1);
  check_int "from past slot 2" (-1) (Ff_index.first_fit_idx_from t ~need:20 ~from:3);
  check_int "from far beyond" (-1) (Ff_index.first_fit_idx_from t ~need:0 ~from:1000);
  Ff_index.deactivate t 2;
  check_int "deactivated never matches" (-1)
    (Ff_index.first_fit_idx_from t ~need:0 ~from:2);
  check_raises_invalid "negative need" (fun () ->
      Ff_index.first_fit_idx_from t ~need:(-1) ~from:0)

let test_fold_active () =
  let t = Ff_index.create () in
  ignore (Ff_index.push t ~residual:4);
  ignore (Ff_index.push t ~residual:7);
  ignore (Ff_index.push t ~residual:1);
  Ff_index.deactivate t 1;
  let pairs =
    Ff_index.fold_active t ~init:[] ~f:(fun acc slot r -> (slot, r) :: acc)
  in
  Alcotest.(check (list (pair int int))) "active pairs" [ (2, 1); (0, 4) ] pairs

(* Window compaction: filling the leaves while the older half is dead
   slides the window instead of growing, retiring those slots. Public
   slot numbers — and so the leftmost-fit order — are unchanged. *)
let test_compaction () =
  let t = Ff_index.create ~initial_cap:4 () in
  for i = 0 to 3 do
    ignore (Ff_index.push t ~residual:(10 + i))
  done;
  Ff_index.deactivate t 0;
  Ff_index.deactivate t 1;
  (* Leaves full, left half inactive: this push slides, not grows. *)
  check_int "post-slide slot id" 4 (Ff_index.push t ~residual:99);
  check_int "compacted below" 2 (Ff_index.compacted_below t);
  check_int "length keeps counting" 5 (Ff_index.length t);
  check_int "survivor residual" 12 (Ff_index.residual t 2);
  check_int "leftmost fit unchanged" 2 (Ff_index.first_fit_idx t 11);
  check_int "fit reaches new slot" 4 (Ff_index.first_fit_idx t 50);
  Alcotest.(check (list int)) "active window" [ 2; 3; 4 ] (Ff_index.active t);
  check_raises_invalid "retired set" (fun () -> Ff_index.set t 0 5);
  check_raises_invalid "retired deactivate" (fun () -> Ff_index.deactivate t 0);
  check_raises_invalid "retired residual" (fun () -> Ff_index.residual t 1)

(* Randomized differential test against a naive array model, over the
   degenerate and ordinary starting capacities. Both query spellings
   must agree with the model (and so with each other). *)
let prop_vs_naive_at initial_cap =
  qcase ~count:100
    ~name:(Printf.sprintf "matches naive model under random ops (cap %d)" initial_cap)
    (fun ops ->
      let t = Ff_index.create ~initial_cap () in
      let model = ref [||] in
      let ok = ref true in
      List.iter
        (fun (op, arg) ->
          let n = Array.length !model in
          match op mod 5 with
          | 0 ->
              ignore (Ff_index.push t ~residual:arg);
              model := Array.append !model [| arg |]
          | 1 when n > 0 ->
              let slot = arg mod n in
              let v = arg * 7 mod 1000 in
              if slot < Ff_index.compacted_below t then begin
                (* Compaction only retires inactive slots, and retired
                   slots reject writes. *)
                if !model.(slot) <> -1 then ok := false;
                match Ff_index.set t slot v with
                | () -> ok := false
                | exception Invalid_argument _ -> ()
              end
              else begin
                Ff_index.set t slot v;
                !model.(slot) <- v
              end
          | 2 when n > 0 ->
              let slot = arg mod n in
              if slot < Ff_index.compacted_below t then begin
                if !model.(slot) <> -1 then ok := false;
                match Ff_index.deactivate t slot with
                | () -> ok := false
                | exception Invalid_argument _ -> ()
              end
              else begin
                Ff_index.deactivate t slot;
                !model.(slot) <- -1
              end
          | 3 ->
              let need = arg mod 1000 in
              let naive = ref None in
              Array.iteri
                (fun i r -> if !naive = None && r >= need && r >= 0 then naive := Some i)
                !model;
              if Ff_index.first_fit t need <> !naive then ok := false;
              let idx = Ff_index.first_fit_idx t need in
              if (match !naive with None -> -1 | Some s -> s) <> idx then ok := false
          | _ ->
              let need = arg mod 1000 in
              let from = if n = 0 then 0 else arg mod (n + 2) in
              let naive = ref (-1) in
              Array.iteri
                (fun i r ->
                  if !naive = -1 && i >= from && r >= need && r >= 0 then naive := i)
                !model;
              if Ff_index.first_fit_idx_from t ~need ~from <> !naive then ok := false)
        ops;
      !ok)
    QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 4) (int_range 0 10_000)))

let suite =
  [
    case "push/query" test_push_query;
    case "set/deactivate" test_set_deactivate;
    case "need zero" test_need_zero;
    case "growth" test_growth;
    case "bad slot" test_bad_slot;
    case "cap one" test_cap_one;
    case "first_fit_idx_from" test_fit_from;
    case "fold_active" test_fold_active;
    case "compaction" test_compaction;
    prop_vs_naive_at 1;
    prop_vs_naive_at 2;
    prop_vs_naive_at 8;
  ]
