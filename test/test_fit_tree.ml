open Dbp_sim
open Helpers

(* Differential tests of the tournament tree against a naive array
   model, in both maintenance modes: the pruned-DFS default and the
   successor (sorted-key) mode Best-Fit opts into — whose aggregates
   are rebuilt lazily, so every query below also exercises the
   dirty-flag path. *)

(* ---- naive model: (residual, score) per slot, residual -1 = inactive ---- *)

let naive_first m ~need =
  let r = ref (-1) in
  Array.iteri (fun i (res, _) -> if !r < 0 && res >= need then r := i) m;
  !r

let naive_best m ~need =
  let best = ref (-1) and best_r = ref max_int in
  Array.iteri
    (fun i (res, _) -> if res >= need && res < !best_r then (best := i; best_r := res))
    m;
  !best

let naive_worst m ~need =
  let best = ref (-1) and best_r = ref (-1) in
  Array.iteri
    (fun i (res, _) -> if res >= 0 && res > !best_r then (best := i; best_r := res))
    m;
  if !best_r >= need then !best else -1

let naive_best_score m ~need =
  let best = ref (-1) and best_s = ref min_int in
  Array.iteri
    (fun i (res, s) -> if res >= need && s > !best_s then (best := i; best_s := s))
    m;
  !best

let naive_first_by m ~need ~min_score =
  let r = ref (-1) in
  Array.iteri
    (fun i (res, s) -> if !r < 0 && res >= need && s >= min_score then r := i)
    m;
  !r

let both_modes f =
  List.iter (fun successor -> f ~successor) [ false; true ]

let mode_name successor name =
  Printf.sprintf "%s (successor=%b)" name successor

(* ---- deterministic behavior ---- *)

let test_queries_basic () =
  both_modes (fun ~successor ->
      let n s = mode_name successor s in
      let t = Fit_tree.create ~successor () in
      List.iter
        (fun (r, s) -> ignore (Fit_tree.push t ~residual:r ~score:s))
        [ (10, 3); (50, 1); (30, 4); (50, 1) ];
      check_int (n "first fit") 0 (Fit_tree.first_fit_idx t 5);
      check_int (n "best fit = tightest") 2 (Fit_tree.best_fit_idx t 20);
      check_int (n "worst fit = roomiest") 1 (Fit_tree.worst_fit_idx t 20);
      check_int (n "worst fit too big") (-1) (Fit_tree.worst_fit_idx t 60);
      check_int (n "best score") 2 (Fit_tree.best_score_idx t ~need:0);
      check_int (n "best score under need") 1 (Fit_tree.best_score_idx t ~need:40);
      check_int (n "first fit by score") 2
        (Fit_tree.first_fit_by t ~need:20 ~min_score:4);
      check_int (n "first fit by: none") (-1)
        (Fit_tree.first_fit_by t ~need:20 ~min_score:5))

(* Equal keys everywhere: every query must prefer the smallest slot —
   the earliest-opened bin, the tie-break DESIGN.md pins for BF/WF. *)
let test_tie_breaks () =
  both_modes (fun ~successor ->
      let n s = mode_name successor s in
      let t = Fit_tree.create ~successor () in
      for _ = 1 to 4 do
        ignore (Fit_tree.push t ~residual:7 ~score:2)
      done;
      check_int (n "best-fit tie -> lowest slot") 0 (Fit_tree.best_fit_idx t 7);
      check_int (n "worst-fit tie -> lowest slot") 0 (Fit_tree.worst_fit_idx t 3);
      check_int (n "best-score tie -> lowest slot") 0
        (Fit_tree.best_score_idx t ~need:0);
      Fit_tree.deactivate t 0;
      check_int (n "tie skips inactive") 1 (Fit_tree.best_fit_idx t 7);
      check_int (n "worst tie skips inactive") 1 (Fit_tree.worst_fit_idx t 3))

let test_all_inactive () =
  both_modes (fun ~successor ->
      let n s = mode_name successor s in
      let t = Fit_tree.create ~successor ~initial_cap:4 () in
      for i = 0 to 3 do
        ignore (Fit_tree.push t ~residual:(10 * (i + 1)) ~score:i)
      done;
      for i = 0 to 3 do
        Fit_tree.deactivate t i
      done;
      check_int (n "first fit empty") (-1) (Fit_tree.first_fit_idx t 0);
      check_int (n "best fit empty") (-1) (Fit_tree.best_fit_idx t 0);
      check_int (n "worst fit empty") (-1) (Fit_tree.worst_fit_idx t 0);
      check_int (n "best score empty") (-1) (Fit_tree.best_score_idx t ~need:0);
      (* Window full and wholly inactive: the next push slides instead
         of growing, retiring the left half. *)
      let slot = Fit_tree.push t ~residual:5 ~score:9 in
      check_int (n "slot numbering continues") 4 slot;
      check_bool (n "compaction happened") true (Fit_tree.compacted_below t >= 2);
      check_int (n "only survivor answers") 4 (Fit_tree.best_fit_idx t 5);
      check_int (n "worst agrees") 4 (Fit_tree.worst_fit_idx t 5);
      check_int (n "score agrees") 4 (Fit_tree.best_score_idx t ~need:0))

let test_compaction () =
  both_modes (fun ~successor ->
      let n s = mode_name successor s in
      let t = Fit_tree.create ~successor ~initial_cap:4 () in
      for i = 0 to 3 do
        ignore (Fit_tree.push t ~residual:(10 + i) ~score:i)
      done;
      Fit_tree.deactivate t 0;
      Fit_tree.deactivate t 1;
      check_int (n "post-slide slot id") 4 (Fit_tree.push t ~residual:99 ~score:7);
      check_int (n "compacted below") 2 (Fit_tree.compacted_below t);
      check_int (n "survivor residual") 12 (Fit_tree.residual t 2);
      check_int (n "best fit unchanged") 2 (Fit_tree.best_fit_idx t 11);
      check_int (n "worst reaches new slot") 4 (Fit_tree.worst_fit_idx t 50);
      Alcotest.(check (list int))
        (n "active window") [ 2; 3; 4 ] (Fit_tree.active t);
      check_raises_invalid (n "retired set") (fun () ->
          Fit_tree.set t 0 ~residual:5 ~score:0);
      check_raises_invalid (n "retired deactivate") (fun () ->
          Fit_tree.deactivate t 1))

(* ---- randomized differential ---- *)

let prop_vs_naive ~successor ~initial_cap =
  qcase ~count:80
    ~name:
      (Printf.sprintf "matches naive model (successor=%b, cap %d)" successor
         initial_cap)
    (fun ops ->
      let t = Fit_tree.create ~successor ~initial_cap () in
      let model = ref [||] in
      let ok = ref true in
      let agree name got want = if got <> want then begin
        Printf.eprintf "fit_tree %s: got %d want %d\n" name got want;
        ok := false
      end in
      List.iter
        (fun (op, arg) ->
          let m = !model in
          let n = Array.length m in
          let residual = arg mod 1000 in
          let score = (arg mod 101) - 50 in
          match op mod 8 with
          | 0 | 1 ->
              ignore (Fit_tree.push t ~residual ~score);
              model := Array.append m [| (residual, score) |]
          | 2 when n > 0 ->
              let slot = arg mod n in
              if slot < Fit_tree.compacted_below t then begin
                (* Only inactive slots are retired; writes then raise. *)
                if fst m.(slot) <> -1 then ok := false;
                match Fit_tree.set t slot ~residual ~score with
                | () -> ok := false
                | exception Invalid_argument _ -> ()
              end
              else begin
                Fit_tree.set t slot ~residual ~score;
                m.(slot) <- (residual, score)
              end
          | 3 when n > 0 ->
              let slot = arg mod n in
              if slot < Fit_tree.compacted_below t then begin
                if fst m.(slot) <> -1 then ok := false;
                match Fit_tree.deactivate t slot with
                | () -> ok := false
                | exception Invalid_argument _ -> ()
              end
              else begin
                Fit_tree.deactivate t slot;
                m.(slot) <- (-1, min_int)
              end
          | 4 -> agree "first_fit" (Fit_tree.first_fit_idx t residual)
                   (naive_first m ~need:residual)
          | 5 -> agree "best_fit" (Fit_tree.best_fit_idx t residual)
                   (naive_best m ~need:residual)
          | 6 -> agree "worst_fit" (Fit_tree.worst_fit_idx t residual)
                   (naive_worst m ~need:residual)
          | _ ->
              agree "best_score" (Fit_tree.best_score_idx t ~need:residual)
                (naive_best_score m ~need:residual);
              agree "first_fit_by"
                (Fit_tree.first_fit_by t ~need:residual ~min_score:score)
                (naive_first_by m ~need:residual ~min_score:score))
        ops;
      !ok)
    QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 7) (int_range 0 10_000)))

let suite =
  [
    case "queries" test_queries_basic;
    case "ties prefer lowest slot" test_tie_breaks;
    case "all-inactive window" test_all_inactive;
    case "compaction" test_compaction;
    prop_vs_naive ~successor:false ~initial_cap:1;
    prop_vs_naive ~successor:false ~initial_cap:8;
    prop_vs_naive ~successor:true ~initial_cap:1;
    prop_vs_naive ~successor:true ~initial_cap:8;
  ]
