(* Imap is checked against a Hashtbl model over random operation
   sequences — the map backs the streaming engine's per-item table, so
   any divergence (especially around backward-shift deletion, which is
   the one subtle part) must surface here, not as a wrong packing. *)

open Dbp_util
open Helpers

let test_basic () =
  let m = Imap.create () in
  check_int "empty" 0 (Imap.length m);
  Imap.set m 7 70;
  Imap.set m (-3) 30;
  Imap.set m 0 1;
  check_int "len" 3 (Imap.length m);
  check_int "find 7" 70 (Imap.find m 7);
  check_int "find -3" 30 (Imap.find m (-3));
  Imap.set m 7 71;
  check_int "replace keeps len" 3 (Imap.length m);
  check_int "replaced" 71 (Imap.find m 7);
  check_bool "mem" true (Imap.mem m 0);
  check_bool "not mem" false (Imap.mem m 12);
  Alcotest.(check (option int)) "find_opt" (Some 1) (Imap.find_opt m 0);
  Alcotest.(check (option int)) "find_opt none" None (Imap.find_opt m 99);
  (match Imap.find m 99 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "find missing should raise")

let test_add_new_and_take () =
  let m = Imap.create () in
  check_bool "fresh" true (Imap.add_new m 5 50);
  check_bool "dup" false (Imap.add_new m 5 51);
  check_int "dup kept old" 50 (Imap.find m 5);
  check_int "take" 50 (Imap.take m 5);
  check_int "taken out" 0 (Imap.length m);
  (match Imap.take m 5 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "take missing should raise");
  Imap.remove m 5 (* no-op, must not raise *)

let test_min_int_rejected () =
  let m = Imap.create () in
  check_raises_invalid "set" (fun () -> Imap.set m min_int 0);
  check_raises_invalid "mem" (fun () -> Imap.mem m min_int);
  check_raises_invalid "take" (fun () -> Imap.take m min_int)

let test_grow_many () =
  let m = Imap.create ~capacity:8 () in
  for i = 0 to 9_999 do
    Imap.set m (i * 7) i
  done;
  check_int "len" 10_000 (Imap.length m);
  for i = 0 to 9_999 do
    if Imap.find m (i * 7) <> i then Alcotest.failf "lost key %d" (i * 7)
  done;
  (* Delete every other key, then re-check survivors: exercises
     backshift across grown tables. *)
  for i = 0 to 9_999 do
    if i mod 2 = 0 then ignore (Imap.take m (i * 7))
  done;
  check_int "half left" 5_000 (Imap.length m);
  for i = 0 to 9_999 do
    let expect = if i mod 2 = 0 then None else Some i in
    if Imap.find_opt m (i * 7) <> expect then Alcotest.failf "wrong at %d" i
  done

let test_clear () =
  let m = Imap.create () in
  Imap.set m 1 2;
  Imap.set m 3 4;
  Imap.clear m;
  check_int "cleared" 0 (Imap.length m);
  check_bool "gone" false (Imap.mem m 1);
  Imap.set m 1 9;
  check_int "reusable" 9 (Imap.find m 1)

let test_iter_fold () =
  let m = Imap.create () in
  List.iter (fun (k, v) -> Imap.set m k v) [ (1, 10); (2, 20); (3, 30) ];
  let sum = ref 0 in
  Imap.iter (fun k v -> sum := !sum + k + v) m;
  check_int "iter sum" 66 !sum;
  check_int "fold sum" 66 (Imap.fold (fun k v acc -> acc + k + v) m 0)

(* Model test: random add/set/remove/take/mem sequences against a
   Hashtbl, checked after every operation via length and at the end via
   full contents. Keys are drawn from a small range so collisions,
   clusters and backshift chains are frequent. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_bound 400)
      (pair (int_range 0 4) (pair (int_range (-40) 40) (int_bound 1000))))

let prop_vs_hashtbl ops =
  let m = Imap.create ~capacity:8 () in
  let h = Hashtbl.create 16 in
  List.iter
    (fun (op, (k, v)) ->
      (match op with
      | 0 ->
          Imap.set m k v;
          Hashtbl.replace h k v
      | 1 ->
          let fresh = Imap.add_new m k v in
          let model_fresh = not (Hashtbl.mem h k) in
          if fresh <> model_fresh then QCheck2.Test.fail_report "add_new freshness";
          if model_fresh then Hashtbl.replace h k v
      | 2 ->
          Imap.remove m k;
          Hashtbl.remove h k
      | 3 -> (
          match Imap.take m k with
          | got ->
              let want =
                match Hashtbl.find_opt h k with
                | Some v -> v
                | None -> QCheck2.Test.fail_report "take succeeded on missing key"
              in
              if got <> want then QCheck2.Test.fail_report "take value";
              Hashtbl.remove h k
          | exception Not_found ->
              if Hashtbl.mem h k then QCheck2.Test.fail_report "take missed present key")
      | _ ->
          if Imap.mem m k <> Hashtbl.mem h k then
            QCheck2.Test.fail_report "mem disagrees");
      if Imap.length m <> Hashtbl.length h then
        QCheck2.Test.fail_report "length disagrees")
    ops;
  (* Final deep comparison both ways. *)
  Hashtbl.iter
    (fun k v ->
      if Imap.find_opt m k <> Some v then QCheck2.Test.fail_report "missing binding")
    h;
  Imap.iter
    (fun k v ->
      if Hashtbl.find_opt h k <> Some v then QCheck2.Test.fail_report "phantom binding")
    m;
  true

let suite =
  [
    case "basic" test_basic;
    case "add-new-take" test_add_new_and_take;
    case "min-int-rejected" test_min_int_rejected;
    case "grow-many" test_grow_many;
    case "clear" test_clear;
    case "iter-fold" test_iter_fold;
    qcase ~count:500 ~name:"model vs Hashtbl" prop_vs_hashtbl gen_ops;
  ]
