open Dbp_util
open Dbp_instance
open Helpers

let test_sorting () =
  let inst = instance [ (5, 6, 0.1); (1, 3, 0.2); (1, 2, 0.3) ] in
  let arr = Instance.items inst in
  check_int "count" 3 (Instance.length inst);
  check_int "first arrival" 1 arr.(0).arrival;
  check_bool "tie by id" true (arr.(0).id < arr.(1).id)

let test_duplicate_ids () =
  let a = item ~id:1 ~a:0 ~d:1 ~s:0.1 and b = item ~id:1 ~a:2 ~d:3 ~s:0.1 in
  check_raises_invalid "duplicate" (fun () -> Instance.of_items [ a; b ])

let test_mu () =
  let inst = instance [ (0, 1, 0.1); (0, 8, 0.1); (2, 6, 0.1) ] in
  check_int "min duration" 1 (Instance.min_duration inst);
  check_int "max duration" 8 (Instance.max_duration inst);
  check_float ~eps:1e-9 "mu" 8.0 (Instance.mu inst);
  check_float ~eps:1e-9 "log2 mu" 3.0 (Instance.log2_mu inst)

let test_demand () =
  (* two items: 0.5 for 4 ticks + 0.25 for 8 ticks = 4 bin-ticks *)
  let inst = instance [ (0, 4, 0.5); (0, 8, 0.25) ] in
  check_float ~eps:1e-6 "demand" 4.0 (Instance.demand inst)

let test_span () =
  check_int "overlap" 10 (Instance.span (instance [ (0, 10, 0.1); (2, 3, 0.1) ]));
  check_int "gap" 3 (Instance.span (instance [ (0, 2, 0.1); (5, 6, 0.1) ]));
  check_int "chain" 4 (Instance.span (instance [ (0, 2, 0.1); (2, 4, 0.1) ]));
  check_int "empty" 0 (Instance.span (Instance.of_items []))

let test_contiguous () =
  check_bool "contiguous" true (Instance.is_contiguous (instance [ (0, 2, 0.1); (1, 5, 0.1) ]));
  check_bool "gap" false (Instance.is_contiguous (instance [ (0, 2, 0.1); (5, 6, 0.1) ]));
  check_bool "touching" true (Instance.is_contiguous (instance [ (0, 2, 0.1); (2, 4, 0.1) ]))

let test_active_at () =
  let inst = instance [ (0, 4, 0.1); (2, 6, 0.1); (5, 7, 0.1) ] in
  check_int "at 3" 2 (List.length (Instance.active_at inst 3));
  check_int "at 4" 1 (List.length (Instance.active_at inst 4));
  check_int "at 10" 0 (List.length (Instance.active_at inst 10))

let test_union_shift () =
  let a = instance [ (0, 2, 0.1) ] in
  let b =
    Instance.of_items [ item ~id:100 ~a:4 ~d:6 ~s:0.1 ]
  in
  let u = Instance.union a b in
  check_int "union size" 2 (Instance.length u);
  let s = Instance.shift u 10 in
  check_int "shifted start" 10 (Instance.start_time s);
  check_int "shifted end" 16 (Instance.end_time s);
  check_raises_invalid "negative arrival" (fun () -> Instance.shift u (-5))

let test_is_aligned () =
  check_bool "aligned" true
    (Instance.is_aligned (instance [ (0, 8, 0.1); (4, 6, 0.1); (3, 4, 0.1) ]));
  check_bool "not aligned" false (Instance.is_aligned (instance [ (1, 3, 0.1) ]))

let test_find () =
  let inst = instance [ (0, 2, 0.1); (1, 3, 0.2) ] in
  check_int "find id 1" 1 (Instance.find inst 1).id;
  (match Instance.find inst 99 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

(* The hashtable index must agree with a plain scan of [items] for
   every id that exists — and ids are arbitrary, not dense, so the
   random instances here exercise gaps and large ids. *)
let prop_find_agrees_with_scan =
  qcase ~name:"find = linear scan over items"
    (fun inst ->
      let arr = Instance.items inst in
      Array.for_all (fun (r : Item.t) -> Instance.find inst r.id == r) arr
      &&
      let missing = 1 + Array.fold_left (fun m (r : Item.t) -> max m r.id) 0 arr in
      match Instance.find inst missing with
      | exception Not_found -> true
      | _ -> false)
    QCheck2.Gen.(
      let* n = int_range 1 60 in
      let* seed = int_range 0 1_000_000 in
      return
        (random_instance (Prng.create ~seed) ~n ~max_time:100 ~max_duration:50))

let test_empty_guards () =
  let e = Instance.of_items [] in
  check_bool "is_empty" true (Instance.is_empty e);
  check_raises_invalid "min_duration" (fun () -> Instance.min_duration e);
  check_raises_invalid "start_time" (fun () -> Instance.start_time e)

let gen_inst =
  QCheck2.Gen.(
    let* n = int_range 1 40 in
    let* seed = int_range 0 1_000_000 in
    return
      (random_instance (Prng.create ~seed) ~n ~max_time:100 ~max_duration:50))

let prop_span_le_window =
  qcase ~name:"span <= end - start, with equality iff contiguous"
    (fun inst ->
      let window = Instance.end_time inst - Instance.start_time inst in
      let span = Instance.span inst in
      span <= window && Instance.is_contiguous inst = (span = window))
    gen_inst

let prop_demand_le_span_times_peak =
  qcase ~name:"demand <= span * peak concurrent load"
    (fun inst ->
      let profile = Profile.of_instance inst in
      Instance.demand_units inst
      <= Instance.span inst * Profile.max_load_units profile)
    gen_inst

let suite =
  [
    case "sorting" test_sorting;
    case "duplicate ids" test_duplicate_ids;
    case "mu" test_mu;
    case "demand" test_demand;
    case "span" test_span;
    case "contiguous" test_contiguous;
    case "active_at" test_active_at;
    case "union/shift" test_union_shift;
    case "is_aligned" test_is_aligned;
    case "find" test_find;
    prop_find_agrees_with_scan;
    case "empty guards" test_empty_guards;
    prop_span_le_window;
    prop_demand_le_span_times_peak;
  ]
