open Dbp_util
open Helpers

let test_is_pow2 () =
  List.iter (fun n -> check_bool (string_of_int n) true (Ints.is_pow2 n)) [ 1; 2; 4; 1024 ];
  List.iter (fun n -> check_bool (string_of_int n) false (Ints.is_pow2 n)) [ 3; 5; 6; 7; 1000 ];
  check_raises_invalid "zero" (fun () -> Ints.is_pow2 0)

let test_pow2 () =
  check_int "2^0" 1 (Ints.pow2 0);
  check_int "2^10" 1024 (Ints.pow2 10);
  check_int "2^61" (1 lsl 61) (Ints.pow2 61);
  check_raises_invalid "negative" (fun () -> Ints.pow2 (-1));
  check_raises_invalid "too big" (fun () -> Ints.pow2 62)

let test_floor_log2 () =
  check_int "1" 0 (Ints.floor_log2 1);
  check_int "2" 1 (Ints.floor_log2 2);
  check_int "3" 1 (Ints.floor_log2 3);
  check_int "4" 2 (Ints.floor_log2 4);
  check_int "1023" 9 (Ints.floor_log2 1023);
  check_int "1024" 10 (Ints.floor_log2 1024);
  check_raises_invalid "zero" (fun () -> Ints.floor_log2 0)

let test_ceil_log2 () =
  check_int "1" 0 (Ints.ceil_log2 1);
  check_int "2" 1 (Ints.ceil_log2 2);
  check_int "3" 2 (Ints.ceil_log2 3);
  check_int "4" 2 (Ints.ceil_log2 4);
  check_int "5" 3 (Ints.ceil_log2 5);
  check_int "1025" 11 (Ints.ceil_log2 1025)

let test_ntz () =
  check_int "1" 0 (Ints.ntz 1);
  check_int "2" 1 (Ints.ntz 2);
  check_int "12" 2 (Ints.ntz 12);
  check_int "96" 5 (Ints.ntz 96);
  check_int "2^40" 40 (Ints.ntz (1 lsl 40));
  check_raises_invalid "zero" (fun () -> Ints.ntz 0)

let test_popcount () =
  check_int "0" 0 (Ints.popcount 0);
  check_int "1" 1 (Ints.popcount 1);
  check_int "255" 8 (Ints.popcount 255);
  check_int "0b1010101" 4 (Ints.popcount 0b1010101)

let test_ceil_div () =
  check_int "7/2" 4 (Ints.ceil_div 7 2);
  check_int "8/2" 4 (Ints.ceil_div 8 2);
  check_int "0/5" 0 (Ints.ceil_div 0 5);
  check_int "1/5" 1 (Ints.ceil_div 1 5);
  check_raises_invalid "zero den" (fun () -> Ints.ceil_div 1 0)

let test_ceil_to_multiple () =
  check_int "7->8" 8 (Ints.ceil_to_multiple 7 4);
  check_int "8->8" 8 (Ints.ceil_to_multiple 8 4);
  check_int "0->0" 0 (Ints.ceil_to_multiple 0 4)

(* Exhaustive power-of-two boundary sweep: at every representable
   exponent, pow2 / is_pow2 / floor_log2 / ceil_log2 / ntz must agree
   at 2^k and flip correctly at 2^k +- 1. The Ff_index window geometry
   and the aligned-workload class arithmetic both live on exactly these
   edges. *)
let test_pow2_boundaries () =
  for k = 0 to 61 do
    let p = Ints.pow2 k in
    check_int (Printf.sprintf "pow2 %d" k) (1 lsl k) p;
    check_bool (Printf.sprintf "is_pow2 2^%d" k) true (Ints.is_pow2 p);
    check_int (Printf.sprintf "floor_log2 2^%d" k) k (Ints.floor_log2 p);
    check_int (Printf.sprintf "ceil_log2 2^%d" k) k (Ints.ceil_log2 p);
    check_int (Printf.sprintf "ntz 2^%d" k) k (Ints.ntz p);
    if k >= 1 then begin
      (* One below: 2^k - 1 (all-ones; equals 1 when k = 1). *)
      check_bool (Printf.sprintf "is_pow2 (2^%d-1)" k) (k = 1) (Ints.is_pow2 (p - 1));
      check_int
        (Printf.sprintf "floor_log2 (2^%d-1)" k)
        (k - 1)
        (Ints.floor_log2 (p - 1));
      check_int
        (Printf.sprintf "ceil_log2 (2^%d-1)" k)
        (if k = 1 then 0 else k)
        (Ints.ceil_log2 (p - 1));
      check_int (Printf.sprintf "ntz (2^%d-1)" k) 0 (Ints.ntz (p - 1));
      check_int (Printf.sprintf "popcount (2^%d-1)" k) k (Ints.popcount (p - 1));
      (* One above: 2^k + 1 (fits even at k = 61; ceil_log2 may return
         62 without ever computing 2^62). *)
      check_bool (Printf.sprintf "is_pow2 (2^%d+1)" k) false (Ints.is_pow2 (p + 1));
      check_int (Printf.sprintf "floor_log2 (2^%d+1)" k) k (Ints.floor_log2 (p + 1));
      check_int (Printf.sprintf "ceil_log2 (2^%d+1)" k) (k + 1) (Ints.ceil_log2 (p + 1));
      check_int (Printf.sprintf "ntz (2^%d+1)" k) 0 (Ints.ntz (p + 1))
    end
  done

(* 0 / 1 / max_int / min_int edges of every function's domain. max_int
   is 2^62 - 1 on 64-bit, so its ceil_log2 is 62 — one past what pow2
   can represent, and the implementation must not try. *)
let test_int_extremes () =
  check_int "floor_log2 max_int" 61 (Ints.floor_log2 max_int);
  check_int "ceil_log2 max_int" 62 (Ints.ceil_log2 max_int);
  check_bool "is_pow2 max_int" false (Ints.is_pow2 max_int);
  check_int "ntz max_int" 0 (Ints.ntz max_int);
  check_int "popcount max_int" 62 (Ints.popcount max_int);
  check_int "popcount 0" 0 (Ints.popcount 0);
  check_int "ceil_div max_int 1" max_int (Ints.ceil_div max_int 1);
  check_int "ceil_div max_int max_int" 1 (Ints.ceil_div max_int max_int);
  check_int "ceil_div 0 max_int" 0 (Ints.ceil_div 0 max_int);
  check_int "ceil_to_multiple 0 max_int" 0 (Ints.ceil_to_multiple 0 max_int);
  check_raises_invalid "pow2 62" (fun () -> Ints.pow2 62);
  check_raises_invalid "pow2 min_int" (fun () -> Ints.pow2 min_int);
  check_raises_invalid "ceil_div -1 2" (fun () -> Ints.ceil_div (-1) 2);
  check_raises_invalid "ceil_div 1 -2" (fun () -> Ints.ceil_div 1 (-2));
  check_raises_invalid "is_pow2 min_int" (fun () -> Ints.is_pow2 min_int);
  check_raises_invalid "floor_log2 min_int" (fun () -> Ints.floor_log2 min_int);
  check_raises_invalid "ceil_log2 0" (fun () -> Ints.ceil_log2 0);
  check_raises_invalid "ceil_log2 min_int" (fun () -> Ints.ceil_log2 min_int);
  check_raises_invalid "ntz min_int" (fun () -> Ints.ntz min_int);
  check_raises_invalid "popcount min_int" (fun () -> Ints.popcount min_int)

(* Exhaustive ceil_div / ceil_to_multiple over a dense grid, checked
   against the division-and-remainder definition (no float detour). *)
let test_ceil_div_exhaustive () =
  for a = 0 to 256 do
    for b = 1 to 16 do
      let expected = (a / b) + if a mod b = 0 then 0 else 1 in
      check_int (Printf.sprintf "ceil_div %d %d" a b) expected (Ints.ceil_div a b);
      let m = Ints.ceil_to_multiple a b in
      check_bool
        (Printf.sprintf "ceil_to_multiple %d %d is the least multiple >= a" a b)
        true
        (m >= a && m mod b = 0 && m - a < b)
    done
  done

(* Pinned splitmix_mix vectors (63-bit int semantics): the solver's
   count-vector keys and Imap's probe sequence both depend on these
   exact outputs, so a silent change to the mixer constants would
   otherwise only surface as a perf anomaly. *)
let test_splitmix_pinned () =
  List.iter
    (fun (input, expected) ->
      check_int (Printf.sprintf "mix %d" input) expected (Ints.splitmix_mix input))
    [
      (0, 0);
      (1, 325314373706360124);
      (2, 650628747412720248);
      (42, -4478504743760069021);
      (-1, -4358557655461851615);
      (max_int, 2988409355664667327);
      (min_int, -1876405024465769582);
      (0xDEADBEEF, -3102968435899162166);
    ]

let prop_splitmix_avalanche =
  (* Flipping the low input bit must change many output bits. The true
     minimum over +-2^40 is 12 (measured exhaustively enough); 8 leaves
     slack so the property is about avalanche, not one exact constant. *)
  qcase ~name:"splitmix_mix: low-bit flip changes >= 8 output bits"
    (fun x ->
      let d = Ints.splitmix_mix x lxor Ints.splitmix_mix (x + 1) in
      Ints.popcount (d land max_int) >= 8)
    QCheck2.Gen.(int_range (-(1 lsl 40)) (1 lsl 40))

let prop_log2_bracket =
  qcase ~name:"2^floor_log2 n <= n < 2^(floor_log2 n + 1)"
    (fun n ->
      let k = Ints.floor_log2 n in
      Ints.pow2 k <= n && n < Ints.pow2 (k + 1))
    QCheck2.Gen.(int_range 1 (1 lsl 40))

let prop_ceil_log2 =
  qcase ~name:"n <= 2^ceil_log2 n < 2n"
    (fun n ->
      let k = Ints.ceil_log2 n in
      n <= Ints.pow2 k && (n = 1 || Ints.pow2 k < 2 * n))
    QCheck2.Gen.(int_range 1 (1 lsl 40))

let prop_ntz_divides =
  qcase ~name:"2^ntz n divides n, 2^(ntz n + 1) does not"
    (fun n ->
      let k = Ints.ntz n in
      n mod Ints.pow2 k = 0 && n mod (2 * Ints.pow2 k) <> 0)
    QCheck2.Gen.(int_range 1 (1 lsl 40))

let prop_ceil_div =
  qcase ~name:"ceil_div a b = ceil(a/b)"
    (fun (a, b) ->
      let expected = int_of_float (ceil (float_of_int a /. float_of_int b)) in
      Ints.ceil_div a b = expected)
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 1000))

let suite =
  [
    case "is_pow2" test_is_pow2;
    case "pow2" test_pow2;
    case "floor_log2" test_floor_log2;
    case "ceil_log2" test_ceil_log2;
    case "ntz" test_ntz;
    case "popcount" test_popcount;
    case "ceil_div" test_ceil_div;
    case "ceil_to_multiple" test_ceil_to_multiple;
    case "pow2 boundaries (exhaustive)" test_pow2_boundaries;
    case "int extremes" test_int_extremes;
    case "ceil_div (exhaustive grid)" test_ceil_div_exhaustive;
    case "splitmix_mix pinned vectors" test_splitmix_pinned;
    prop_splitmix_avalanche;
    prop_log2_bracket;
    prop_ceil_log2;
    prop_ntz_divides;
    prop_ceil_div;
  ]
