open Dbp_util
open Dbp_instance
open Helpers

let test_roundtrip_string () =
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.25); (3, 9, 0.125) ] in
  let back = Io.of_string (Io.to_string inst) in
  check_int "count" (Instance.length inst) (Instance.length back);
  Array.iter2
    (fun (a : Item.t) (b : Item.t) ->
      check_int "id" a.id b.id;
      check_int "arrival" a.arrival b.arrival;
      check_int "departure" a.departure b.departure;
      check_int "size" (Load.to_units a.size) (Load.to_units b.size))
    (Instance.items inst) (Instance.items back)

let test_parses_comments_and_blanks () =
  let s = "# a comment\n\nid,arrival,departure,size\n1, 0, 4, 0.5\n\n# end\n" in
  let inst = Io.of_string s in
  check_int "one item" 1 (Instance.length inst);
  check_int "id" 1 (Instance.items inst).(0).id

let test_errors () =
  let expect_failure name s =
    match Io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect_failure "wrong arity" "1,2,3\n";
  expect_failure "bad number" "1,x,3,0.5\n";
  expect_failure "inverted interval" "1,5,3,0.5\n";
  expect_failure "duplicate ids" "1,0,2,0.5\n1,3,4,0.5\n"

(* Rejections must carry the offending line number (and for duplicates,
   the line of the first definition) so a bad trace in a thousand-line
   file is findable. *)
let test_positioned_errors () =
  let expect_message name s fragment =
    match Io.of_string s with
    | exception Failure msg ->
        if not (Helpers.contains ~sub:fragment msg) then
          Alcotest.failf "%s: error %S does not mention %S" name msg fragment
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  let header = "id,arrival,departure,size\n" in
  expect_message "duplicate id cites both lines"
    (header ^ "7,0,2,0.5\n\n7,3,4,0.25\n")
    "line 4: duplicate item id 7 (first defined at line 2)";
  expect_message "zero duration"
    (header ^ "1,0,2,0.5\n2,5,5,0.5\n")
    "line 3: item 2 has non-positive duration (arrival 5, departure 5)";
  expect_message "negative duration"
    (header ^ "1,9,3,0.5\n")
    "line 2: item 1 has non-positive duration (arrival 9, departure 3)";
  expect_message "zero size" (header ^ "1,0,2,0.0\n")
    "line 2: item 1 has non-positive size 0";
  expect_message "negative size" (header ^ "1,0,2,-0.25\n")
    "line 2: item 1 has non-positive size -0.25";
  expect_message "oversized item" (header ^ "1,0,2,1.5\n")
    "line 2: item 1 has size 1.5 > 1";
  expect_message "malformed arrival names the field" (header ^ "1,x,3,0.5\n")
    "line 2: malformed arrival \"x\"";
  (* of_channel must report the same positions as of_string *)
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc (header ^ "7,0,2,0.5\n7,3,4,0.25\n");
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match Io.of_channel ic with
      | exception Failure msg ->
          if not (Helpers.contains ~sub:"line 3: duplicate item id 7" msg) then
            Alcotest.failf "of_channel: error %S lacks position" msg
      | _ -> Alcotest.fail "of_channel: expected Failure")

let test_file_roundtrip () =
  let path = Filename.temp_file "dbp_io" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let inst = binary_input 32 in
      Io.to_file ~path inst;
      let back = Io.of_file ~path in
      check_int "count" (Instance.length inst) (Instance.length back);
      check_int "demand preserved" (Instance.demand_units inst)
        (Instance.demand_units back))

let test_header_variants () =
  let s = " Id, Arrival, Departure, Size \n1,0,4,0.5\n" in
  check_int "header with spaces and caps skipped" 1
    (Instance.length (Io.of_string s));
  let crlf = "id,arrival,departure,size\r\n1,0,4,0.5\r\n2,1,5,0.25\r\n" in
  check_int "CRLF line endings" 2 (Instance.length (Io.of_string crlf))

(* Reading from a pipe proves the parser streams line-by-line: a pipe
   has no length and cannot be rewound, so any read-whole-file-first
   implementation would fail here. *)
let test_of_channel_pipe () =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc "id,arrival,departure,size\n1,0,4,0.5\n2,1,5,0.25\n";
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> check_int "streamed from a pipe" 2 (Instance.length (Io.of_channel ic)))

(* The serve protocol's framing need: a producer killed mid-write must
   surface as a line-numbered error, never as a silently shorter
   instance. Both flavors of truncation — a complete-looking record
   whose newline never arrived, and a record cut mid-field — go through
   a real pipe so the EOF is the kernel's, not a string's. *)
let expect_truncated name payload ~line =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc payload;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match Io.of_channel ic with
      | exception Failure msg ->
          let want = Printf.sprintf "line %d: truncated final line" line in
          if not (Helpers.contains ~sub:want msg) then
            Alcotest.failf "%s: error %S does not mention %S" name msg want
      | inst ->
          Alcotest.failf "%s: silently parsed %d items from truncated input"
            name (Instance.length inst))

let test_truncated_final_line () =
  expect_truncated "no trailing newline on last record"
    "id,arrival,departure,size\n1,0,4,0.5\n2,1,5,0.25" ~line:3;
  expect_truncated "mid-record EOF"
    "id,arrival,departure,size\n1,0,4,0.5\n2,1," ~line:3;
  expect_truncated "single unterminated record" "1,0,4,0.5" ~line:1;
  (* Terminated input with trailing whitespace-only tail still parses:
     the strict framing only rejects non-blank unterminated bytes. *)
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc "id,arrival,departure,size\n1,0,4,0.5\n  ";
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      check_int "blank tail tolerated" 1 (Instance.length (Io.of_channel ic)))

let prop_roundtrip_random =
  qcase ~count:60 ~name:"random instances roundtrip through CSV"
    (fun seed ->
      let inst = random_instance (Prng.create ~seed) ~n:50 ~max_time:100 ~max_duration:50 in
      let back = Io.of_string (Io.to_string inst) in
      (* sizes are written with 9 decimals = full Load resolution, so the
         roundtrip must be exact *)
      Instance.length back = Instance.length inst
      && Instance.demand_units back = Instance.demand_units inst
      && Instance.span back = Instance.span inst)
    QCheck2.Gen.(int_range 0 1_000_000)

let suite =
  [
    case "roundtrip" test_roundtrip_string;
    case "comments and blanks" test_parses_comments_and_blanks;
    case "errors" test_errors;
    case "positioned errors" test_positioned_errors;
    case "file roundtrip" test_file_roundtrip;
    case "header variants" test_header_variants;
    case "streaming from a pipe" test_of_channel_pipe;
    case "truncated final line is a framing error" test_truncated_final_line;
    prop_roundtrip_random;
  ]
