(* Item_block backs the streaming engine's departure queue; these tests
   pin the arena invariants (slot recycling, field fidelity, dead-slot
   detection) and check the slot heap's pop order against a sorted
   reference over random item sets. *)

open Dbp_instance
open Helpers

let mk ~id ~a ~d ~s = item ~id ~a ~d ~s

let test_alloc_fields () =
  let b = Item_block.create () in
  let r = mk ~id:7 ~a:3 ~d:9 ~s:0.25 in
  let s = Item_block.alloc b r in
  check_int "live" 1 (Item_block.live b);
  check_int "id" 7 (Item_block.id b s);
  check_int "arrival" 3 (Item_block.arrival b s);
  check_int "departure" 9 (Item_block.departure b s);
  check_int "size" (Dbp_util.Load.to_units r.size) (Item_block.size_units b s);
  check_bool "boxed mirror" true (Item_block.item b s == r)

let test_free_and_reuse () =
  let b = Item_block.create () in
  let s0 = Item_block.alloc b (mk ~id:0 ~a:0 ~d:5 ~s:0.5) in
  let s1 = Item_block.alloc b (mk ~id:1 ~a:1 ~d:6 ~s:0.5) in
  Item_block.free b s0;
  check_int "live after free" 1 (Item_block.live b);
  check_raises_invalid "dead id" (fun () -> ignore (Item_block.id b s0));
  check_raises_invalid "double free" (fun () -> Item_block.free b s0);
  let s2 = Item_block.alloc b (mk ~id:2 ~a:2 ~d:7 ~s:0.5) in
  check_int "slot recycled" s0 s2;
  check_int "fresh fields" 2 (Item_block.id b s2);
  check_int "other slot intact" 1 (Item_block.id b s1)

let test_bounds () =
  let b = Item_block.create () in
  check_raises_invalid "negative" (fun () -> ignore (Item_block.id b (-1)));
  check_raises_invalid "beyond cap" (fun () -> ignore (Item_block.id b 10_000));
  check_raises_invalid "never allocated" (fun () -> ignore (Item_block.id b 0))

let test_growth () =
  let b = Item_block.create ~capacity:8 () in
  let slots =
    List.init 1000 (fun i -> Item_block.alloc b (mk ~id:i ~a:i ~d:(i + 1) ~s:0.1))
  in
  check_int "live" 1000 (Item_block.live b);
  List.iteri (fun i s -> check_int "id survives growth" i (Item_block.id b s)) slots

let test_heap_empty () =
  let b = Item_block.create () in
  let h = Item_block.Heap.create () in
  ignore b;
  check_int "empty min_departure" max_int (Item_block.Heap.min_departure h);
  check_raises_invalid "pop empty" (fun () -> ignore (Item_block.Heap.pop h));
  check_raises_invalid "top empty" (fun () -> ignore (Item_block.Heap.top h))

(* Random (departure, id) multiset: heap pops must equal the sorted
   order. Departures are drawn from a tiny range so ties (resolved by
   id) are the common case, not the exception. *)
let gen_items =
  QCheck2.Gen.(list_size (int_range 1 300) (int_range 1 8))

let prop_pop_order deps =
  let b = Item_block.create ~capacity:8 () in
  let h = Item_block.Heap.create ~capacity:4 () in
  let expected =
    List.mapi (fun id d -> (d + 1, id)) deps
    |> List.sort compare
  in
  List.iteri
    (fun id d ->
      let s = Item_block.alloc b (mk ~id ~a:0 ~d:(d + 1) ~s:0.01) in
      Item_block.Heap.add b h s)
    deps;
  let popped = ref [] in
  while Item_block.Heap.length h > 0 do
    let mind = Item_block.Heap.min_departure h in
    let s = Item_block.Heap.pop h in
    if Item_block.departure b s <> mind then
      QCheck2.Test.fail_report "min_departure disagrees with pop";
    popped := (Item_block.departure b s, Item_block.id b s) :: !popped
  done;
  List.rev !popped = expected

(* Interleaved alloc/free churn: the free list must never hand out a
   live slot or lose track of one. Model: id -> expected item. *)
let gen_churn =
  QCheck2.Gen.(list_size (int_bound 400) (pair bool (int_range 1 50)))

let prop_churn ops =
  let b = Item_block.create ~capacity:8 () in
  let slots = Hashtbl.create 16 in
  (* id -> slot *)
  let next = ref 0 in
  List.iter
    (fun (is_alloc, d) ->
      if is_alloc || Hashtbl.length slots = 0 then begin
        let id = !next in
        incr next;
        let s = Item_block.alloc b (mk ~id ~a:0 ~d ~s:0.1) in
        Hashtbl.iter
          (fun _ s' -> if s = s' then QCheck2.Test.fail_report "reused live slot")
          slots;
        Hashtbl.replace slots id s
      end
      else begin
        let id, s =
          Hashtbl.fold (fun id s acc -> match acc with None -> Some (id, s) | a -> a)
            slots None
          |> Option.get
        in
        if Item_block.id b s <> id then QCheck2.Test.fail_report "slot corrupted";
        Item_block.free b s;
        Hashtbl.remove slots id
      end;
      if Item_block.live b <> Hashtbl.length slots then
        QCheck2.Test.fail_report "live count drifted")
    ops;
  Hashtbl.iter
    (fun id s ->
      if Item_block.id b s <> id then QCheck2.Test.fail_report "final slot corrupted")
    slots;
  true

let suite =
  [
    case "alloc fields" test_alloc_fields;
    case "free and reuse" test_free_and_reuse;
    case "bounds" test_bounds;
    case "growth" test_growth;
    case "heap empty" test_heap_empty;
    qcase ~count:500 ~name:"heap pop order = sorted (departure, id)" prop_pop_order
      gen_items;
    qcase ~count:300 ~name:"alloc/free churn keeps slots disjoint" prop_churn gen_churn;
  ]
