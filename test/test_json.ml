open Dbp_util
open Helpers

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("count", Json.Int (-42));
      ("ratio", Json.Float 2.5);
      ("name", Json.String "a \"quoted\" line\nwith\ttabs");
      ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
    ]

let test_roundtrip () =
  let back = Json.parse_exn (Json.to_string sample) in
  check_bool "compact roundtrip" true (back = sample);
  let back = Json.parse_exn (Json.to_string_hum sample) in
  check_bool "indented roundtrip" true (back = sample)

let test_literals () =
  check_bool "int stays int" true (Json.parse_exn "17" = Json.Int 17);
  check_bool "decimal point makes a float" true (Json.parse_exn "1.0" = Json.Float 1.0);
  check_bool "exponent makes a float" true (Json.parse_exn "1e3" = Json.Float 1000.0);
  check_bool "escapes" true
    (Json.parse_exn {|"aé\n"|} = Json.String "a\xc3\xa9\n");
  check_bool "unicode escape" true
    (Json.parse_exn "\"\\u00e9\"" = Json.String "\xc3\xa9");
  check_bool "surrogate pair" true
    (Json.parse_exn "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80");
  check_bool "raw utf-8 passthrough" true
    (Json.parse_exn "\"\xf0\x9f\x98\x80\"" = Json.String "\xf0\x9f\x98\x80");
  check_bool "whitespace tolerated" true
    (Json.parse_exn " [ 1 , { \"a\" : null } ] "
    = Json.List [ Json.Int 1; Json.Obj [ ("a", Json.Null) ] ])

let test_errors () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\": 1,}";
  bad "\"unterminated";
  bad "1 trailing";
  bad "nul";
  bad "+1"

let test_member () =
  check_bool "present" true (Json.member "count" sample = Some (Json.Int (-42)));
  check_bool "absent" true (Json.member "missing" sample = None);
  check_bool "non-object" true (Json.member "a" (Json.Int 1) = None)

let test_non_finite () =
  check_bool "nan renders as null" true (Json.to_string (Json.Float Float.nan) = "null");
  check_bool "inf renders as null" true
    (Json.to_string (Json.Float Float.infinity) = "null")

(* Random trees built from a deterministic seed exercise the printer and
   parser against each other. *)
let prop_roundtrip_random =
  qcase ~count:100 ~name:"random values roundtrip"
    (fun seed ->
      let rng = Prng.create ~seed in
      let rec gen depth =
        match if depth = 0 then 0 else Prng.int_below rng 7 with
        | 1 -> Json.Bool (Prng.int_below rng 2 = 0)
        | 2 -> Json.Int (Prng.int_below rng 2_000_001 - 1_000_000)
        | 3 -> Json.Float (float_of_int (Prng.int_below rng 1000) /. 8.0)
        | 4 ->
            Json.String
              (String.init (Prng.int_below rng 8) (fun _ ->
                   Char.chr (Prng.int_below rng 96 + 32)))
        | 5 -> Json.List (List.init (Prng.int_below rng 4) (fun _ -> gen (depth - 1)))
        | 6 ->
            Json.Obj
              (List.init (Prng.int_below rng 4) (fun i ->
                   (Printf.sprintf "k%d" i, gen (depth - 1))))
        | _ -> Json.Null
      in
      let v = gen 4 in
      Json.parse_exn (Json.to_string v) = v
      && Json.parse_exn (Json.to_string_hum v) = v)
    QCheck2.Gen.(int_range 0 1_000_000)

let suite =
  [
    case "roundtrip" test_roundtrip;
    case "literals" test_literals;
    case "parse errors" test_errors;
    case "member" test_member;
    case "non-finite floats" test_non_finite;
    prop_roundtrip_random;
  ]
