open Dbp_util
open Helpers

let units l = Load.to_units l

let test_constants () =
  check_int "zero" 0 (units Load.zero);
  check_int "one = capacity" Load.capacity (units Load.one)

let test_of_fraction () =
  check_int "1/2" (Load.capacity / 2) (units (Load.of_fraction ~num:1 ~den:2));
  check_int "3/4" (Load.capacity * 3 / 4) (units (Load.of_fraction ~num:3 ~den:4));
  check_raises_invalid "negative num" (fun () -> Load.of_fraction ~num:(-1) ~den:2);
  check_raises_invalid "zero den" (fun () -> Load.of_fraction ~num:1 ~den:0)

(* num * capacity silently wrapped to a negative load before the guard
   landed; the boundary is max_int / capacity. *)
let test_of_fraction_overflow () =
  let bound = max_int / Load.capacity in
  check_int "largest safe numerator" Load.capacity
    (units (Load.of_fraction ~num:bound ~den:bound));
  check_bool "huge num, huge den, positive" true
    (units (Load.of_fraction ~num:bound ~den:(2 * bound)) > 0);
  check_raises_invalid "num = bound + 1 overflows" (fun () ->
      Load.of_fraction ~num:(bound + 1) ~den:(bound + 1));
  check_raises_invalid "max_int overflows" (fun () ->
      Load.of_fraction ~num:max_int ~den:max_int)

let test_fraction_floor_fits () =
  (* den items of size 1/den must exactly fit one bin: the invariant
     Corollary 5.8's exactness depends on. *)
  for den = 1 to 64 do
    let s = Load.of_fraction ~num:1 ~den in
    check_bool
      (Printf.sprintf "%d x 1/%d fits" den den)
      true
      (den * units s <= Load.capacity)
  done

let test_of_float () =
  check_int "0.0" 0 (units (Load.of_float 0.0));
  check_int "0.5" (Load.capacity / 2) (units (Load.of_float 0.5));
  check_int "1.0" Load.capacity (units (Load.of_float 1.0));
  check_int "clamp high" Load.capacity (units (Load.of_float 1.5));
  check_int "clamp low" 0 (units (Load.of_float (-0.5)));
  check_int "clamp +inf" Load.capacity (units (Load.of_float infinity));
  check_int "clamp -inf" 0 (units (Load.of_float neg_infinity));
  check_raises_invalid "nan rejected" (fun () -> Load.of_float nan);
  check_float ~eps:1e-9 "roundtrip" 0.375 (Load.to_float (Load.of_float 0.375))

let test_arithmetic () =
  let a = Load.of_float 0.25 and b = Load.of_float 0.5 in
  check_int "add" (Load.capacity * 3 / 4) (units (Load.add a b));
  check_int "sub" (Load.capacity / 4) (units (Load.sub b a));
  check_raises_invalid "sub underflow" (fun () -> Load.sub a b);
  check_int "scale" (Load.capacity / 2) (units (Load.scale a 2));
  check_raises_invalid "scale negative" (fun () -> Load.scale a (-1))

(* add/scale wrapped silently past max_int before the guards landed; the
   scale boundary for a one-unit-of-capacity load is max_int / capacity,
   mirroring the of_fraction overflow tests above. *)
let test_add_overflow () =
  let m = Load.of_units max_int in
  check_int "max_int + zero" max_int (units (Load.add m Load.zero));
  check_raises_invalid "max_int + 1 unit" (fun () ->
      Load.add m (Load.of_units 1));
  check_raises_invalid "one past the midpoint, doubled" (fun () ->
      let h = Load.of_units ((max_int / 2) + 1) in
      Load.add h h);
  check_int "saturating variant clips" max_int
    (units (Load.add_sat m (Load.of_units 1)));
  check_int "saturating variant exact below ceiling" (max_int - 1)
    (units (Load.add_sat (Load.of_units (max_int - 2)) (Load.of_units 1)))

let test_scale_overflow () =
  let bound = max_int / Load.capacity in
  check_int "largest safe factor" (bound * Load.capacity)
    (units (Load.scale Load.one bound));
  check_raises_invalid "bound + 1 overflows" (fun () ->
      Load.scale Load.one (bound + 1));
  check_int "zero load scales by anything" 0
    (units (Load.scale Load.zero max_int));
  check_raises_invalid "max_int load, factor 2" (fun () ->
      Load.scale (Load.of_units max_int) 2)

let test_comparisons () =
  let a = Load.of_float 0.25 and b = Load.of_float 0.5 in
  check_bool "lt" true Load.(a < b);
  check_bool "le" true Load.(a <= a);
  check_bool "not lt" false Load.(b < a);
  check_bool "equal" true (Load.equal a a);
  check_int "compare" (-1) (Load.compare a b)

let test_fits_residual () =
  let half = Load.of_float 0.5 in
  check_bool "fits empty" true (Load.fits half ~into:Load.zero);
  check_bool "fits exactly" true (Load.fits half ~into:half);
  check_bool "overflows" false (Load.fits half ~into:(Load.of_float 0.6));
  check_int "residual" (Load.capacity / 2) (units (Load.residual half));
  check_raises_invalid "residual over one" (fun () ->
      Load.residual (Load.add Load.one Load.one))

let prop_add_commutes =
  qcase ~name:"add commutes"
    (fun (a, b) ->
      Load.equal
        (Load.add (Load.of_units a) (Load.of_units b))
        (Load.add (Load.of_units b) (Load.of_units a)))
    QCheck2.Gen.(pair (int_range 0 Load.capacity) (int_range 0 Load.capacity))

let prop_fraction_times_den_close =
  qcase ~name:"den * (1/den) within den units of one"
    (fun den ->
      let s = units (Load.of_fraction ~num:1 ~den) in
      let total = den * s in
      total <= Load.capacity && Load.capacity - total < den)
    QCheck2.Gen.(int_range 1 100_000)

let suite =
  [
    case "constants" test_constants;
    case "of_fraction" test_of_fraction;
    case "of_fraction overflow guard" test_of_fraction_overflow;
    case "fraction floor fits" test_fraction_floor_fits;
    case "of_float" test_of_float;
    case "arithmetic" test_arithmetic;
    case "add overflow guard" test_add_overflow;
    case "scale overflow guard" test_scale_overflow;
    case "comparisons" test_comparisons;
    case "fits/residual" test_fits_residual;
    prop_add_commutes;
    prop_fraction_times_den_close;
  ]
