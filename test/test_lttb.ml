open Dbp_util
open Helpers

(* Two-pointer subsequence check: every element of [sub], in order, is
   an element of [full]. *)
let is_subsequence sub full =
  let n = Array.length full in
  let rec scan i j =
    if i = Array.length sub then true
    else if j = n then false
    else if sub.(i) = full.(j) then scan (i + 1) (j + 1)
    else scan i (j + 1)
  in
  scan 0 0

let ramp n = Array.init n (fun i -> (i, (i * 7919 mod 101) - 50))

let test_downsample_identity () =
  let s = ramp 10 in
  Alcotest.(check (array (pair int int))) "fits: copy" s (Lttb.downsample s ~cap:10);
  Alcotest.(check (array (pair int int))) "fits under cap" s (Lttb.downsample s ~cap:64);
  check_bool "copy, not alias" true (Lttb.downsample s ~cap:64 != s)

let test_downsample_shape () =
  let s = ramp 1000 in
  let d = Lttb.downsample s ~cap:50 in
  check_int "exactly cap points" 50 (Array.length d);
  check_bool "first kept" true (d.(0) = s.(0));
  check_bool "last kept" true (d.(49) = s.(999));
  check_bool "subsequence" true (is_subsequence d s)

let test_downsample_guards () =
  check_raises_invalid "cap 2" (fun () -> Lttb.downsample (ramp 10) ~cap:2);
  check_raises_invalid "create cap 2" (fun () -> ignore (Lttb.create ~cap:2 ()))

let test_uncapped_exact () =
  let t = Lttb.create () in
  let s = ramp 5000 in
  Array.iter (Lttb.push t) s;
  Alcotest.(check (array (pair int int))) "every sample kept" s (Lttb.to_array t)

let test_capped_buffer_bound () =
  let cap = 32 in
  let t = Lttb.create ~cap () in
  let s = ramp 10_000 in
  Array.iter
    (fun sample ->
      Lttb.push t sample;
      if Lttb.length t >= 2 * cap then
        Alcotest.failf "buffer reached %d (cap %d)" (Lttb.length t) cap)
    s;
  let d = Lttb.to_array t in
  check_bool "output within cap" true (Array.length d <= cap);
  check_bool "first kept" true (d.(0) = s.(0));
  check_bool "last kept" true (d.(Array.length d - 1) = s.(9999));
  check_bool "subsequence of pushes" true (is_subsequence d s)

let test_last_set_last () =
  let t = Lttb.create ~cap:8 () in
  check_bool "empty" true (Lttb.is_empty t);
  check_raises_invalid "last of empty" (fun () -> ignore (Lttb.last t));
  Lttb.push t (0, 1);
  Lttb.push t (3, 5);
  check_bool "last" true (Lttb.last t = (3, 5));
  Lttb.set_last t (3, 9);
  check_bool "overwritten" true (Lttb.last t = (3, 9));
  check_int "length unchanged" 2 (Lttb.length t)

let prop_decimated_subsequence =
  qcase ~count:100 ~name:"decimation: subsequence, endpoints, cap"
    (fun (seed, n, cap) ->
      let rng = Prng.create ~seed in
      (* Non-decreasing ticks with repeats, arbitrary values. *)
      let tick = ref 0 in
      let s =
        Array.init n (fun _ ->
            tick := !tick + Prng.int_below rng 3;
            (!tick, Prng.int_below rng 100))
      in
      let t = Lttb.create ~cap () in
      Array.iter (Lttb.push t) s;
      let d = Lttb.to_array t in
      Array.length d <= cap
      && Lttb.length t < 2 * cap
      && (n = 0 || (d.(0) = s.(0) && d.(Array.length d - 1) = s.(n - 1)))
      && is_subsequence d s)
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 0 500) (int_range 3 40))

let suite =
  [
    case "downsample identity" test_downsample_identity;
    case "downsample shape" test_downsample_shape;
    case "cap guards" test_downsample_guards;
    case "uncapped is exact" test_uncapped_exact;
    case "capped buffer stays bounded" test_capped_buffer_bound;
    case "last/set_last" test_last_set_last;
    prop_decimated_subsequence;
  ]
