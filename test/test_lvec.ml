(* Vector (d-dimensional) loads: Lvec arithmetic laws, workload
   constructor schedule identity at d > 1, bit-identity of the vector
   engine with the scalar engine on zero-extra items, validator-clean
   vector runs for every policy, and the vector CSV round-trip. *)

open Dbp_util
open Dbp_instance
open Dbp_sim
open Dbp_workloads
open Helpers

let cap = Load.capacity

(* ---- Lvec unit tests ---- *)

let test_construct () =
  let v = Lvec.of_units [| 1; 2; 3 |] in
  check_int "dims" 3 (Lvec.dims v);
  check_int "get 0" 1 (Lvec.get v 0);
  check_int "get 2" 3 (Lvec.get v 2);
  Alcotest.(check (array int)) "to_units" [| 1; 2; 3 |] (Lvec.to_units v);
  let src = [| 5 |] in
  let w = Lvec.of_units src in
  src.(0) <- 99;
  check_int "of_units copies" 5 (Lvec.get w 0);
  check_raises_invalid "empty" (fun () -> Lvec.of_units [||]);
  check_raises_invalid "negative" (fun () -> Lvec.of_units [| 1; -1 |]);
  check_raises_invalid "nan component" (fun () -> Lvec.of_floats [| 0.5; Float.nan |])

let test_zero_of_load () =
  let z = Lvec.zero ~dims:3 in
  Alcotest.(check (array int)) "zero" [| 0; 0; 0 |] (Lvec.to_units z);
  let l = Lvec.of_load (Load.of_float 0.5) ~dims:2 in
  check_int "dim 0" (cap / 2) (Lvec.get l 0);
  check_int "dim 1" 0 (Lvec.get l 1)

let test_fits_residual () =
  let used = Lvec.of_floats [| 0.5; 0.75 |] in
  Alcotest.(check bool) "fits" true
    (Lvec.fits (Lvec.of_floats [| 0.5; 0.25 |]) ~into:used);
  Alcotest.(check bool) "fails on dim 1" false
    (Lvec.fits (Lvec.of_floats [| 0.25; 0.5 |]) ~into:used);
  Alcotest.(check (array int)) "residual"
    [| cap / 2; cap / 4 |]
    (Lvec.to_units (Lvec.residual used));
  check_raises_invalid "mixed dims" (fun () ->
      Lvec.fits (Lvec.of_floats [| 0.1 |]) ~into:used)

let test_add_sub_guards () =
  let a = Lvec.of_units [| max_int - 1; 0 |] in
  let b = Lvec.of_units [| 2; 1 |] in
  check_raises_invalid "add overflow" (fun () -> Lvec.add a b);
  check_raises_invalid "sub underflow" (fun () ->
      Lvec.sub (Lvec.of_units [| 1; 0 |]) (Lvec.of_units [| 0; 1 |]));
  check_raises_invalid "add mixed dims" (fun () ->
      Lvec.add a (Lvec.of_units [| 1 |]))

(* ---- Lvec qcheck laws ---- *)

let gen_units =
  QCheck2.Gen.(
    int_range 1 4 >>= fun d -> array_size (return d) (int_range 0 cap))

let gen_pair =
  QCheck2.Gen.(
    int_range 1 4 >>= fun d ->
    pair (array_size (return d) (int_range 0 cap)) (array_size (return d) (int_range 0 cap)))

let prop_round_trip =
  qcase ~name:"of_units/to_units round-trips" ~count:200
    (fun u -> Lvec.to_units (Lvec.of_units u) = u)
    gen_units

let prop_add_model =
  qcase ~name:"add is component-wise, commutative" ~count:200
    (fun (u, v) ->
      let a = Lvec.of_units u and b = Lvec.of_units v in
      let s = Lvec.to_units (Lvec.add a b) in
      Array.for_all2 (fun x y -> x = y) s (Array.map2 ( + ) u v)
      && Lvec.equal (Lvec.add a b) (Lvec.add b a))
    gen_pair

let prop_sub_inverts =
  qcase ~name:"sub inverts add" ~count:200
    (fun (u, v) ->
      let a = Lvec.of_units u and b = Lvec.of_units v in
      Lvec.equal (Lvec.sub (Lvec.add a b) b) a)
    gen_pair

let prop_fits_model =
  qcase ~name:"fits = every dimension within capacity" ~count:200
    (fun (u, v) ->
      let used = Lvec.of_units u and item = Lvec.of_units v in
      let expect = ref true in
      Array.iteri (fun k x -> if x + v.(k) > cap then expect := false) u;
      Lvec.fits item ~into:used = !expect)
    gen_pair

let prop_residual_model =
  qcase ~name:"residual is per-dimension free space" ~count:200
    (fun u ->
      let u = Array.map (fun x -> x mod (cap + 1)) u in
      let r = Lvec.to_units (Lvec.residual (Lvec.of_units u)) in
      Array.for_all2 (fun free x -> free = cap - x) r u)
    gen_units

(* ---- workload constructor identity at d > 1 ---- *)

let drain_chunks ck =
  let block = Item_block.create () in
  let slots = Array.make 64 0 in
  let items = ref [] in
  let rec loop () =
    let n = Event_source.Chunk.next_chunk ck block slots in
    if n > 0 then begin
      for i = 0 to n - 1 do
        items := Item_block.item block slots.(i) :: !items
      done;
      loop ()
    end
  in
  loop ();
  Instance.of_items !items

let check_same_items name a b =
  Alcotest.(check int) (name ^ ": lengths") (Instance.length a) (Instance.length b);
  Alcotest.(check bool) (name ^ ": items (extras included)") true
    (Instance.items a = Instance.items b)

let vec2 shape = { Resource_shape.dims = 2; shape; dim_mu = [||] }

let test_general_constructors_agree () =
  let config =
    {
      General_random.default with
      horizon = 64;
      max_duration = 16;
      resource = vec2 (Correlated 0.7);
    }
  in
  let g = General_random.generate ~config ~seed:11 () in
  let s = Event_source.to_instance (General_random.stream ~config ~seed:11 ()) in
  let c = drain_chunks (General_random.chunks ~config ~seed:11 ()) in
  check_int "vector instance dims" 2 (Instance.dims g);
  check_same_items "generate vs stream" g s;
  check_same_items "stream vs chunks" s c

let test_cloud_constructors_agree () =
  let config =
    { Cloud_traces.default with days = 1; base_rate = 0.1; resource = vec2 Adversarial }
  in
  let g = Cloud_traces.generate ~config ~seed:4 () in
  let s = Event_source.to_instance (Cloud_traces.stream ~config ~seed:4 ()) in
  let c = drain_chunks (Cloud_traces.chunks ~config ~seed:4 ()) in
  check_int "vector instance dims" 2 (Instance.dims g);
  check_same_items "generate vs stream" g s;
  check_same_items "stream vs chunks" s c

(* Aligned's generate is a different instance family from stream (one
   shared PRNG vs per-class splits); only stream and chunks promise
   item-for-item identity. *)
let test_aligned_constructors_agree () =
  let config =
    {
      Aligned_random.default with
      top_class = 4;
      horizon = 32;
      resource = { Resource_shape.dims = 3; shape = Independent; dim_mu = [| 0.5; 0.25 |] };
    }
  in
  let s = Event_source.to_instance (Aligned_random.stream ~config ~seed:9 ()) in
  let c = drain_chunks (Aligned_random.chunks ~config ~seed:9 ()) in
  check_int "vector instance dims" 3 (Instance.dims s);
  check_int "aligned generate dims" 3
    (Instance.dims (Aligned_random.generate ~config ~seed:9 ()));
  check_same_items "stream vs chunks" s c

(* Adversarial extras draw nothing from the PRNG: the dimension-0
   schedule must be exactly the scalar schedule. *)
let test_adversarial_preserves_dim0 () =
  let scalar = { Cloud_traces.default with days = 1; base_rate = 0.1 } in
  let vec = { scalar with resource = vec2 Adversarial } in
  let a = Instance.items (Cloud_traces.generate ~config:scalar ~seed:21 ()) in
  let b = Instance.items (Cloud_traces.generate ~config:vec ~seed:21 ()) in
  check_int "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (r : Item.t) ->
      let v = b.(i) in
      if
        r.id <> v.Item.id || r.arrival <> v.Item.arrival
        || r.departure <> v.Item.departure
        || not (Load.equal r.size v.Item.size)
      then Alcotest.failf "item %d differs in scalar fields" i;
      check_int (Printf.sprintf "item %d mirror extra" i)
        (cap - Load.to_units r.size)
        (Item.size_units v 1))
    a

(* ---- d = 1 bit-identity: zero extras must not change any decision ---- *)

let policies mu_hint =
  [
    ("HA", fun () -> Dbp_core.Ha.policy ());
    ("CDFF", fun () -> Dbp_core.Cdff.policy ());
    ("FF", fun () -> Dbp_baselines.Any_fit.first_fit);
    ("BF", fun () -> Dbp_baselines.Any_fit.best_fit);
    ("WF", fun () -> Dbp_baselines.Any_fit.worst_fit);
    ("NF", fun () -> Dbp_baselines.Any_fit.next_fit);
    ("CD", fun () -> Dbp_baselines.Classify_duration.policy ());
    ("RT", fun () -> Dbp_baselines.Rt_classify.auto ~mu_hint);
    ("SpanGreedy", fun () -> Dbp_baselines.Span_greedy.policy);
  ]

let widen inst =
  Instance.of_items
    (Array.to_list (Instance.items inst)
    |> List.map (fun (r : Item.t) ->
           Item.make_vec ~extra:[| 0 |] ~id:r.id ~arrival:r.arrival
             ~departure:r.departure ~size:r.size))

let scalar_workloads =
  [
    ( "general",
      fun () ->
        General_random.generate
          ~config:{ General_random.default with horizon = 48; max_duration = 16 }
          ~seed:3 () );
    ( "aligned",
      fun () ->
        Aligned_random.generate
          ~config:{ Aligned_random.default with top_class = 4; horizon = 32 }
          ~seed:5 () );
    ( "cloud",
      fun () ->
        Cloud_traces.generate
          ~config:{ Cloud_traces.default with days = 1; base_rate = 0.05 }
          ~seed:2 () );
  ]

let test_zero_extra_bit_identity () =
  List.iter
    (fun (wname, build) ->
      let inst = build () in
      let wide = widen inst in
      check_int (wname ^ ": widened dims") 2 (Instance.dims wide);
      List.iter
        (fun (pname, factory) ->
          let r1 = Engine.run (factory ()) inst in
          let r2 = Engine.run (factory ()) wide in
          let tag = Printf.sprintf "%s/%s" wname pname in
          check_int (tag ^ ": cost") r1.cost r2.cost;
          check_int (tag ^ ": bins_opened") r1.bins_opened r2.bins_opened;
          check_int (tag ^ ": max_open") r1.max_open r2.max_open;
          Alcotest.(check bool) (tag ^ ": series") true (r1.series = r2.series);
          Alcotest.(check bool)
            (tag ^ ": assignment") true
            (Bin_store.assignment r1.store = Bin_store.assignment r2.store))
        (policies (Instance.mu inst)))
    scalar_workloads

(* ---- every policy is validator- and naive-clean on vector inputs ---- *)

let vector_instances =
  [
    ( "general 2d correlated",
      fun () ->
        General_random.generate
          ~config:
            {
              General_random.default with
              horizon = 32;
              max_duration = 8;
              resource = vec2 (Correlated 0.8);
            }
          ~seed:13 () );
    ( "cloud 2d adversarial",
      fun () ->
        Cloud_traces.generate
          ~config:
            { Cloud_traces.default with days = 1; base_rate = 0.05; resource = vec2 Adversarial }
          ~seed:17 () );
    ( "aligned 3d independent",
      fun () ->
        Aligned_random.generate
          ~config:
            {
              Aligned_random.default with
              top_class = 3;
              horizon = 16;
              resource =
                { Resource_shape.dims = 3; shape = Independent; dim_mu = [| 0.6; 0.3 |] };
            }
          ~seed:19 () );
  ]

let test_vector_runs_clean () =
  List.iter
    (fun (wname, build) ->
      let inst = build () in
      List.iter
        (fun (pname, factory) ->
          let tag = Printf.sprintf "%s/%s" wname pname in
          let res, vs = Dbp_check.Validator.run (fun store -> factory () store) inst in
          (match vs with
          | [] -> ()
          | v :: _ ->
              Alcotest.failf "%s: %d violations, first: %s" tag (List.length vs)
                (Dbp_check.Violation.to_string v));
          match Dbp_check.Naive.diff res (Dbp_check.Naive.run (factory ()) inst) with
          | [] -> ()
          | v :: _ -> Alcotest.failf "%s: naive diff: %s" tag (Dbp_check.Violation.to_string v))
        (policies (Instance.mu inst)))
    vector_instances

(* ---- vector CSV round-trip ---- *)

let test_io_round_trip () =
  let items =
    [
      Item.make_vec ~extra:[| 0; cap |] ~id:0 ~arrival:0 ~departure:4
        ~size:(Load.of_float 0.5);
      Item.make_vec
        ~extra:[| cap / 4; 123 |]
        ~id:1 ~arrival:2 ~departure:9
        ~size:(Load.of_float 0.125);
    ]
  in
  let inst = Instance.of_items items in
  let s = Io.to_string inst in
  Alcotest.(check bool) "vector header" true (contains ~sub:"id,arrival,departure,size,size2,size3" s);
  let back = Io.of_string s in
  check_int "dims survive" 3 (Instance.dims back);
  check_same_items "round-trip" inst back;
  check_raises_invalid "mixed dims rejected" (fun () ->
      Instance.of_items [ List.hd items; item ~id:7 ~a:0 ~d:1 ~s:0.5 ])

let suite =
  [
    case "lvec construct" test_construct;
    case "lvec zero/of_load" test_zero_of_load;
    case "lvec fits/residual" test_fits_residual;
    case "lvec add/sub guards" test_add_sub_guards;
    prop_round_trip;
    prop_add_model;
    prop_sub_inverts;
    prop_fits_model;
    prop_residual_model;
    case "general constructors agree at d=2" test_general_constructors_agree;
    case "cloud constructors agree at d=2" test_cloud_constructors_agree;
    case "aligned stream=chunks at d=3" test_aligned_constructors_agree;
    case "adversarial shape preserves dim-0 schedule" test_adversarial_preserves_dim0;
    case "zero extras are bit-identical to scalar (9 policies)" test_zero_extra_bit_identity;
    slow_case "vector runs are validator-clean (9 policies)" test_vector_runs_clean;
    case "vector csv round-trip" test_io_round_trip;
  ]
