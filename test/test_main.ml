(* Aggregates every suite. Each test_<module>.ml exposes
   [suite : unit Alcotest.test_case list]. *)

let () =
  Alcotest.run "dbp"
    [
      ("ints", Test_ints.suite);
      ("json", Test_json.suite);
      ("metrics", Test_metrics.suite);
      ("trace", Test_trace.suite);
      ("vec", Test_vec.suite);
      ("imap", Test_imap.suite);
      ("lttb", Test_lttb.suite);
      ("heap", Test_heap.suite);
      ("prng", Test_prng.suite);
      ("pool", Test_pool.suite);
      ("load", Test_load.suite);
      ("lvec", Test_lvec.suite);
      ("multiset", Test_multiset.suite);
      ("stats", Test_stats.suite);
      ("binpack", Test_binpack.suite);
      ("item", Test_item.suite);
      ("item-block", Test_item_block.suite);
      ("instance", Test_instance.suite);
      ("event-source", Test_event_source.suite);
      ("profile", Test_profile.suite);
      ("reduction", Test_reduction.suite);
      ("ff-index", Test_ff_index.suite);
      ("fit-tree", Test_fit_tree.suite);
      ("depart-queue", Test_depart_queue.suite);
      ("bin-store", Test_bin_store.suite);
      ("fit-group", Test_fit_group.suite);
      ("engine", Test_engine.suite);
      ("serve", Test_serve.suite);
      ("recourse", Test_recourse.suite);
      ("ha", Test_ha.suite);
      ("cdff", Test_cdff.suite);
      ("timeline", Test_timeline.suite);
      ("baselines", Test_baselines.suite);
      ("offline", Test_offline.suite);
      ("workloads", Test_workloads.suite);
      ("analysis", Test_analysis.suite);
      ("momentary", Test_momentary.suite);
      ("theory", Test_theory.suite);
      ("report", Test_report.suite);
      ("experiments", Test_experiments.suite);
      ("reference", Test_reference.suite);
      ("io", Test_io.suite);
      ("check", Test_check.suite);
      ("lemmas", Test_lemmas.suite);
    ]
