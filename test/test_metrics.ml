open Dbp_util
open Helpers

let find name =
  List.find_opt (fun (e : Metrics.entry) -> e.name = name) (Metrics.snapshot ())

let test_counter () =
  let c = Metrics.counter "testm.counter" in
  Metrics.incr c;
  Metrics.add c 4;
  match find "testm.counter" with
  | Some { value = Metrics.Counter n; stability = Metrics.Det; _ } ->
      check_bool "counted" true (n >= 5)
  | _ -> Alcotest.fail "counter entry missing"

let test_gauge_high_water () =
  let g = Metrics.gauge "testm.gauge" in
  Metrics.set_max g 7;
  Metrics.set_max g 3;
  match find "testm.gauge" with
  | Some { value = Metrics.Gauge 7; _ } -> ()
  | _ -> Alcotest.fail "gauge is not a high-water mark"

let test_histogram () =
  let h = Metrics.histogram ~buckets:[| 10; 100 |] "testm.hist" in
  Metrics.observe h 5;
  Metrics.observe h 50;
  Metrics.observe h 500;
  (match find "testm.hist" with
  | Some { value = Metrics.Histogram { bounds; counts; sum }; _ } ->
      check_bool "bounds" true (bounds = [| 10; 100 |]);
      check_bool "counts with overflow" true (counts = [| 1; 1; 1 |]);
      check_int "sum" 555 sum
  | _ -> Alcotest.fail "histogram entry missing");
  check_raises_invalid "empty buckets" (fun () ->
      ignore (Metrics.histogram ~buckets:[||] "testm.hist_bad"));
  check_raises_invalid "non-ascending buckets" (fun () ->
      ignore (Metrics.histogram ~buckets:[| 5; 5 |] "testm.hist_bad2"))

let test_registration () =
  let c = Metrics.counter "testm.idem" in
  Metrics.incr c;
  Metrics.incr (Metrics.counter "testm.idem");
  (match find "testm.idem" with
  | Some { value = Metrics.Counter 2; _ } -> ()
  | _ -> Alcotest.fail "re-registration did not return the same counter");
  check_raises_invalid "kind mismatch" (fun () ->
      ignore (Metrics.gauge "testm.idem"));
  check_raises_invalid "stability mismatch" (fun () ->
      ignore (Metrics.counter ~stability:Metrics.Sched "testm.idem"))

let test_sched_excluded () =
  let c = Metrics.counter ~stability:Metrics.Sched "testm.sched" in
  Metrics.incr c;
  check_bool "Sched metric not in deterministic view" true
    (not (List.mem_assoc "testm.sched" (Metrics.deterministic ())));
  match Metrics.to_json () with
  | Json.Obj fields ->
      let section name =
        match List.assoc name fields with Json.Obj kvs -> kvs | _ -> []
      in
      check_bool "in scheduling section" true
        (List.mem_assoc "testm.sched" (section "scheduling"));
      check_bool "not in metrics section" true
        (not (List.mem_assoc "testm.sched" (section "metrics")))
  | _ -> Alcotest.fail "to_json is not an object"

(* The tentpole contract: everything registered [Det] merges to the same
   values whatever the worker count. Run the same small sweep grid under
   1, 2, and 4 domains and compare the deterministic snapshots. *)
let tiny_workload ~mu ~seed =
  random_instance
    (Prng.create ~seed:((mu * 1000) + seed))
    ~n:25 ~max_time:40 ~max_duration:10

let sweep_metrics jobs =
  Metrics.reset ();
  ignore
    (Dbp_analysis.Sweep.run ~jobs
       ~algorithms:[ ("FF", Dbp_baselines.Any_fit.first_fit) ]
       ~workload:tiny_workload ~mus:[ 4; 8 ] ~seeds:[ 1; 2 ] ());
  Metrics.deterministic ()

let test_jobs_invariant () =
  let d1 = sweep_metrics 1 in
  let d2 = sweep_metrics 2 in
  let d4 = sweep_metrics 4 in
  (match List.assoc_opt "engine.runs" d1 with
  | Some (Metrics.Counter n) -> check_bool "sweep ran engines" true (n > 0)
  | _ -> Alcotest.fail "engine.runs missing");
  (match List.assoc_opt "sweep.cells" d1 with
  | Some (Metrics.Counter 4) -> ()
  | _ -> Alcotest.fail "sweep.cells should count the 2x2 grid");
  check_bool "jobs 1 = jobs 2" true (d1 = d2);
  check_bool "jobs 1 = jobs 4" true (d1 = d4)

let test_reset () =
  let c = Metrics.counter "testm.reset" in
  Metrics.incr c;
  Metrics.reset ();
  match find "testm.reset" with
  | Some { value = Metrics.Counter 0; _ } -> ()
  | _ -> Alcotest.fail "reset did not zero the counter"

let suite =
  [
    case "counter" test_counter;
    case "gauge high-water" test_gauge_high_water;
    case "histogram" test_histogram;
    case "registration idempotent" test_registration;
    case "Sched excluded from deterministic view" test_sched_excluded;
    case "metrics bit-identical across jobs 1/2/4" test_jobs_invariant;
    case "reset" test_reset;
  ]
