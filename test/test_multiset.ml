(* Dbp_util.Multiset: the sorted counted multiset behind the
   incremental OPT_R sweep. Checked against a naive sorted-list
   reference, plus the snapshot-stability contract (previously returned
   key/expansion arrays stay valid after further mutation). *)

open Dbp_util
open Helpers

let test_basic () =
  let ms = Multiset.create () in
  check_bool "empty" true (Multiset.is_empty ms);
  Multiset.add ms 5;
  Multiset.add ms 3;
  Multiset.add ms 5;
  check_bool "not empty" false (Multiset.is_empty ms);
  check_int "cardinality" 3 (Multiset.cardinality ms);
  check_int "distinct" 2 (Multiset.distinct ms);
  check_int "total units" 13 (Multiset.total_units ms);
  check_int "count 5" 2 (Multiset.count ms 5);
  check_int "count absent" 0 (Multiset.count ms 4);
  Alcotest.(check (array int)) "key ascending" [| 3; 1; 5; 2 |] (Multiset.key ms);
  Alcotest.(check (array int))
    "expansion descending" [| 5; 5; 3 |] (Multiset.expansion ms);
  Multiset.remove ms 5;
  check_int "count after remove" 1 (Multiset.count ms 5);
  Alcotest.(check (array int)) "key after remove" [| 3; 1; 5; 1 |] (Multiset.key ms);
  Multiset.remove ms 5;
  Multiset.remove ms 3;
  check_bool "empty again" true (Multiset.is_empty ms);
  Alcotest.(check (array int)) "empty expansion" [||] (Multiset.expansion ms)

let test_iter_ascending () =
  let ms = Multiset.create () in
  List.iter (Multiset.add ms) [ 9; 1; 4; 4; 9; 9 ];
  let seen = ref [] in
  Multiset.iter (fun v c -> seen := (v, c) :: !seen) ms;
  Alcotest.(check (list (pair int int)))
    "value/count pairs ascending"
    [ (1, 1); (4, 2); (9, 3) ]
    (List.rev !seen)

let test_snapshots_stable () =
  let ms = Multiset.create () in
  Multiset.add ms 7;
  Multiset.add ms 2;
  let k = Multiset.key ms in
  let e = Multiset.expansion ms in
  check_bool "key cached" true (Multiset.key ms == k);
  check_bool "expansion cached" true (Multiset.expansion ms == e);
  let k0 = Array.copy k and e0 = Array.copy e in
  Multiset.add ms 7;
  Multiset.remove ms 2;
  (* The arrays handed out before the mutation must not have been
     written through — they may be live Hashtbl keys. *)
  Alcotest.(check (array int)) "old key untouched" k0 k;
  Alcotest.(check (array int)) "old expansion untouched" e0 e;
  Alcotest.(check (array int)) "new key" [| 7; 2 |] (Multiset.key ms);
  Alcotest.(check (array int)) "new expansion" [| 7; 7 |] (Multiset.expansion ms)

let test_invalid () =
  let ms = Multiset.create () in
  check_raises_invalid "remove absent" (fun () -> Multiset.remove ms 3);
  check_raises_invalid "add negative" (fun () -> Multiset.add ms (-1));
  Multiset.add ms 3;
  Multiset.remove ms 3;
  check_raises_invalid "remove exhausted" (fun () -> Multiset.remove ms 3)

let rec remove_one v = function
  | [] -> assert false
  | x :: rest -> if x = v then rest else x :: remove_one v rest

let rle_ascending sorted_desc =
  let groups =
    List.fold_left
      (fun acc v ->
        match acc with
        | (w, c) :: rest when w = v -> (w, c + 1) :: rest
        | _ -> (v, 1) :: acc)
      [] sorted_desc
  in
  List.concat_map (fun (v, c) -> [ v; c ]) groups

let prop_matches_reference =
  qcase ~count:300 ~name:"random ops match a naive sorted-list reference"
    (fun seed ->
      let rng = Prng.create ~seed in
      let ms = Multiset.create () in
      let elems = ref [] in
      let ok = ref true in
      for _ = 1 to 60 do
        let v = Prng.int_below rng 6 in
        if Prng.int_below rng 3 = 0 && List.mem v !elems then begin
          Multiset.remove ms v;
          elems := remove_one v !elems
        end
        else begin
          Multiset.add ms v;
          elems := v :: !elems
        end;
        let desc = List.sort (fun a b -> Int.compare b a) !elems in
        ok :=
          !ok
          && Multiset.cardinality ms = List.length !elems
          && Multiset.total_units ms = List.fold_left ( + ) 0 !elems
          && Multiset.distinct ms = List.length (List.sort_uniq Int.compare !elems)
          && Array.to_list (Multiset.expansion ms) = desc
          && Array.to_list (Multiset.key ms) = rle_ascending desc
          && List.for_all (fun v ->
                 Multiset.count ms v = List.length (List.filter (( = ) v) !elems))
               [ 0; 1; 2; 3; 4; 5 ]
      done;
      !ok)
    QCheck2.Gen.(int_range 0 1_000_000)

let suite =
  [
    case "basic ops" test_basic;
    case "iter ascending" test_iter_ascending;
    case "snapshots stable across mutation" test_snapshots_stable;
    case "invalid ops raise" test_invalid;
    prop_matches_reference;
  ]
