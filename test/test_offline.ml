open Dbp_util
open Dbp_instance
open Dbp_offline
open Helpers

let gen_small =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* seed = int_range 0 1_000_000 in
    return (random_instance (Prng.create ~seed) ~n ~max_time:20 ~max_duration:10))

let gen_medium =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    return (random_instance (Prng.create ~seed) ~n:40 ~max_time:60 ~max_duration:30))

let test_bounds_example () =
  (* one item 0.5 x [0,4), one 1.0 x [2,6): S = .5,.5+1(!overflow
     impossible: sizes <= 1 each, two bins needed on [2,4)). *)
  let inst = instance [ (0, 4, 0.5); (2, 6, 1.0) ] in
  let b = Bounds.compute inst in
  check_int "span" 6 b.span;
  check_int "demand units" (6 * Load.capacity) b.demand_units;
  check_int "demand ceil" 6 (Bounds.demand_ceil b);
  (* ceil(S): [0,2) -> 1, [2,4) -> 2, [4,6) -> 1 : total 8 *)
  check_int "ceil integral" 8 b.ceil_integral;
  check_int "lower" 8 b.lower;
  check_int "lemma31 upper" 16 b.lemma31_upper

let test_opt_repack_example () =
  (* Two half items overlapping: one bin suffices with repacking. *)
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.5) ] in
  let r = Opt_repack.exact inst in
  check_bool "exact" true r.exact;
  check_int "cost = span" 6 r.cost;
  check_int "segments" 3 r.segments;
  check_int "max active" 2 r.max_active

let test_opt_repack_two_bins () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  let r = Opt_repack.exact inst in
  check_int "cost" 8 r.cost

let test_opt_repack_series () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  Alcotest.(check (list (triple int int int)))
    "series" [ (0, 2, 1); (2, 4, 2); (4, 6, 1) ]
    (Opt_repack.series inst)

let test_opt_nonrepack_exact_small () =
  (* With repacking 1 bin almost always; without repacking placing both
     0.6 items forces 2 bins at the overlap. *)
  let inst = instance [ (0, 4, 0.6); (2, 6, 0.6) ] in
  match Opt_nonrepack.exact inst with
  | Some r ->
      check_bool "exact" true r.exact;
      check_int "cost" 8 r.cost
  | None -> Alcotest.fail "expected a result"

let test_opt_nonrepack_single_bin () =
  let inst = instance [ (0, 4, 0.3); (2, 6, 0.3) ] in
  match Opt_nonrepack.exact inst with
  | Some r -> check_int "one bin" 6 r.cost
  | None -> Alcotest.fail "expected a result"

let test_opt_nonrepack_too_big () =
  let rng = Prng.create ~seed:4 in
  let inst = random_instance rng ~n:30 ~max_time:10 ~max_duration:5 in
  check_bool "declines" true (Opt_nonrepack.exact inst = None)

let test_offline_ffd_pinning () =
  (* FFD-by-duration is immune to pinning: pins share one bin. *)
  let mu = 32 in
  let inst = Dbp_workloads.Pinning.generate ~mu () in
  let r = Offline_ffd.pack inst in
  let opt = Opt_repack.exact inst in
  check_bool "near optimal" true (r.cost <= opt.cost + mu);
  let online_ff = Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit inst in
  check_bool "far below online FF" true (r.cost * 4 < online_ff.cost)

let test_offline_ffd_assignment_valid () =
  let rng = Prng.create ~seed:9 in
  let inst = random_instance rng ~n:50 ~max_time:40 ~max_duration:20 in
  let asg = Offline_ffd.assignment inst in
  check_int "all placed" (Instance.length inst) (List.length asg);
  (* No bin may ever exceed capacity: rebuild timelines and check. *)
  let profiles = Hashtbl.create 8 in
  List.iter
    (fun (item_id, bin) ->
      let r = Instance.find inst item_id in
      let tl =
        match Hashtbl.find_opt profiles bin with
        | Some tl -> tl
        | None ->
            let tl = Timeline.create () in
            Hashtbl.replace profiles bin tl;
            tl
      in
      Timeline.add tl ~lo:r.arrival ~hi:r.departure ~units:(Load.to_units r.size))
    asg;
  Hashtbl.iter
    (fun _ tl ->
      check_bool "within capacity" true
        (Timeline.max_on tl ~lo:0 ~hi:(Instance.end_time inst) <= Load.capacity))
    profiles

let prop_sandwich =
  qcase ~count:60 ~name:"lower <= OPT_R <= OPT_NR <= DC-substitute"
    (fun inst ->
      let b = Bounds.compute inst in
      let opt_r = Opt_repack.exact inst in
      let dc = Dual_coloring.cost inst in
      let ok = b.lower <= opt_r.cost && opt_r.cost <= dc in
      match Opt_nonrepack.exact inst with
      | Some nr -> ok && opt_r.cost <= nr.cost && (not nr.exact || nr.cost <= dc)
      | None -> ok)
    gen_small

let prop_lemma31 =
  qcase ~count:40 ~name:"Lemma 3.1: OPT_R <= 2 * ceil integral"
    (fun inst ->
      let b = Bounds.compute inst in
      (Opt_repack.exact inst).cost <= b.lemma31_upper)
    gen_medium

let prop_ffd_proxy_upper =
  qcase ~count:40 ~name:"exact OPT_R <= FFD proxy <= 2 * OPT_R"
    (fun inst ->
      let ex = (Opt_repack.exact inst).cost in
      let proxy = (Opt_repack.ffd_proxy inst).cost in
      ex <= proxy && proxy <= 2 * ex)
    gen_medium

(* ---- incremental OPT_R vs the from-scratch reference sweep ---- *)

(* Power-of-two durations on aligned slots: many events share a
   timestamp, exercising the grouped (departures-first) delta path. *)
let random_aligned rng ~n ~logt =
  let items = ref [] in
  for id = 0 to n - 1 do
    let i = Prng.int_below rng (logt + 1) in
    let len = Ints.pow2 i in
    let a = Prng.int_below rng (Ints.pow2 (logt - i)) * len in
    let size = 1 + Prng.int_below rng Load.capacity in
    items :=
      Item.make ~id ~arrival:a ~departure:(a + len) ~size:(Load.of_units size)
      :: !items
  done;
  Instance.of_items !items

(* Heavily overlapping near-half items: the worst case for the bracket,
   so the warm-started branch-and-bound path actually runs. *)
let random_adversarial rng ~n =
  let items = ref [] in
  for id = 0 to n - 1 do
    let a = Prng.int_below rng 8 in
    let d = a + 1 + Prng.int_below rng 8 in
    let size = (Load.capacity / 2) - 5 + Prng.int_below rng 11 in
    items :=
      Item.make ~id ~arrival:a ~departure:d ~size:(Load.of_units size) :: !items
  done;
  Instance.of_items !items

let gen_mixed =
  QCheck2.Gen.(
    let* kind = int_range 0 2 in
    let* seed = int_range 0 1_000_000 in
    let rng = Prng.create ~seed in
    return
      (match kind with
      | 0 -> random_instance rng ~n:12 ~max_time:24 ~max_duration:12
      | 1 -> random_aligned rng ~n:12 ~logt:4
      | _ -> random_adversarial rng ~n:10))

let same_sweep inst =
  let solver = Dbp_binpack.Solver.create () in
  let r = Opt_repack.exact ~solver inst in
  let series = Opt_repack.series ~solver inst in
  let rr, rseries, _nodes = Opt_repack.reference inst in
  r.cost = rr.cost && r.exact = rr.exact && r.segments = rr.segments
  && r.max_active = rr.max_active && series = rseries

let prop_incremental_matches_reference =
  qcase ~count:120
    ~name:"incremental sweep = from-scratch reference (cost, flags, series)"
    same_sweep gen_mixed

let test_incremental_matches_reference_structured () =
  (* The paper's own structured inputs: binary sigma_mu and the pinning
     adversary, both dense in simultaneous events. *)
  check_bool "binary mu=8" true (same_sweep (binary_input 8));
  check_bool "pinning mu=8" true (same_sweep (Dbp_workloads.Pinning.generate ~mu:8 ()))

let permute_ids seed inst =
  let items = Array.to_list (Instance.items inst) in
  let n = List.length items in
  let perm = Array.init n (fun i -> i) in
  let rng = Prng.create ~seed in
  for i = n - 1 downto 1 do
    let j = Prng.int_below rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Instance.of_items
    (List.mapi
       (fun i (it : Item.t) ->
         Item.make ~id:perm.(i) ~arrival:it.arrival ~departure:it.departure
           ~size:it.size)
       items)

let prop_permutation_invariant =
  qcase ~count:80 ~name:"OPT_R invariant under item-id permutation"
    (fun (inst, seed) ->
      let shuffled = permute_ids seed inst in
      let a = Opt_repack.exact inst and b = Opt_repack.exact shuffled in
      a.cost = b.cost && a.exact = b.exact && a.segments = b.segments
      && Opt_repack.series inst = Opt_repack.series shuffled)
    QCheck2.Gen.(pair gen_mixed (int_range 0 1_000_000))

let test_jobs_bit_identity () =
  let insts =
    List.init 6 (fun i ->
        random_instance (Prng.create ~seed:(100 + i)) ~n:25 ~max_time:40
          ~max_duration:20)
  in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        let bank = Pool.Bank.create (fun () -> Dbp_binpack.Solver.create ()) in
        Pool.map pool
          (fun inst ->
            Pool.Bank.use bank (fun solver ->
                let r = Opt_repack.exact ~solver inst in
                (r.cost, r.exact, r.segments, Opt_repack.series ~solver inst)))
          insts)
  in
  let r1 = run 1 in
  check_bool "jobs 2 = jobs 1" true (run 2 = r1);
  check_bool "jobs 4 = jobs 1" true (run 4 = r1)

let prop_offline_ffd_feasible_above_opt =
  qcase ~count:40 ~name:"Offline FFD cost between OPT_R and online FF-decent bound"
    (fun inst ->
      let opt = (Opt_repack.exact inst).cost in
      let ffd = (Offline_ffd.pack inst).cost in
      ffd >= opt)
    gen_medium

let suite =
  [
    case "bounds example" test_bounds_example;
    case "opt_repack example" test_opt_repack_example;
    case "opt_repack two bins" test_opt_repack_two_bins;
    case "opt_repack series" test_opt_repack_series;
    case "opt_nonrepack small" test_opt_nonrepack_exact_small;
    case "opt_nonrepack single bin" test_opt_nonrepack_single_bin;
    case "opt_nonrepack declines big" test_opt_nonrepack_too_big;
    case "offline ffd vs pinning" test_offline_ffd_pinning;
    case "offline ffd assignment valid" test_offline_ffd_assignment_valid;
    prop_sandwich;
    prop_lemma31;
    prop_ffd_proxy_upper;
    prop_offline_ffd_feasible_above_opt;
    prop_incremental_matches_reference;
    case "incremental = reference on structured inputs"
      test_incremental_matches_reference_structured;
    prop_permutation_invariant;
    slow_case "OPT_R bit-identical across --jobs 1/2/4" test_jobs_bit_identity;
  ]
