open Dbp_util
open Helpers

(* Results come back in submission order whatever the worker count,
   including when task costs are wildly unbalanced. *)
let test_map_ordering () =
  let inputs = List.init 100 Fun.id in
  let busy_square x =
    (* Heavier work for smaller x, so a racy merge would reorder. *)
    let spin = (100 - x) * 500 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := (!acc + i) mod 1_000_003
    done;
    ignore !acc;
    x * x
  in
  let expected = List.map (fun x -> x * x) inputs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            expected
            (Pool.map pool busy_square inputs)))
    [ 1; 2; 4 ]

let test_exception_propagation () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let futures =
        List.map
          (fun x -> Pool.submit pool (fun () -> if x = 3 then failwith "boom" else x))
          [ 1; 2; 3; 4 ]
      in
      (match List.map (Pool.await pool) futures with
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
      | _ -> Alcotest.fail "expected the task's Failure to re-raise");
      (* The pool survives a failed task. *)
      check_int "still works" 7 (Pool.await pool (Pool.submit pool (fun () -> 7))))

let test_inline_exception () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let fut = Pool.submit pool (fun () -> failwith "inline") in
      match Pool.await pool fut with
      | exception Failure msg -> Alcotest.(check string) "message" "inline" msg
      | _ -> Alcotest.fail "expected Failure")

(* A task may fan its own subtasks onto the same pool: await helps run
   queued work, so this terminates even with every worker nested. *)
let test_nested_submit () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let totals =
            Pool.map pool
              (fun base ->
                let parts = Pool.map pool (fun i -> base + i) [ 1; 2; 3 ] in
                List.fold_left ( + ) 0 parts)
              [ 10; 20; 30; 40 ]
          in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            [ 36; 66; 96; 126 ] totals))
    [ 1; 2; 4 ]

let test_shutdown_rejects_submit () =
  let pool = Pool.create ~jobs:2 () in
  check_int "works before" 1 (Pool.await pool (Pool.submit pool (fun () -> 1)));
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_raises_invalid "submit after shutdown" (fun () ->
      ignore (Pool.submit pool (fun () -> 2)))

let test_default_jobs_override () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  check_int "explicit override" 3 (Pool.default_jobs ());
  check_raises_invalid "n < 1 rejected" (fun () -> Pool.set_default_jobs 0);
  Pool.set_default_jobs before

let test_bank_reuse_and_exclusivity () =
  let created = Atomic.make 0 in
  let bank =
    Pool.Bank.create (fun () ->
        Atomic.incr created;
        (ref 0, Mutex.create ()))
  in
  Pool.with_pool ~jobs:4 (fun pool ->
      let _ =
        Pool.map pool
          (fun _ ->
            Pool.Bank.use bank (fun (count, mutex) ->
                (* Exclusive borrow: trylock can never fail. *)
                check_bool "exclusive" true (Mutex.try_lock mutex);
                incr count;
                Mutex.unlock mutex))
          (List.init 64 Fun.id)
      in
      ());
  let resources = Pool.Bank.all bank in
  check_int "bank lists every resource" (Atomic.get created) (List.length resources);
  check_bool "bounded by concurrency" true (Atomic.get created <= 5);
  check_int "no use lost" 64
    (List.fold_left (fun acc (count, _) -> acc + !count) 0 resources)

let suite =
  [
    case "map ordering under contention" test_map_ordering;
    case "exception propagation" test_exception_propagation;
    case "inline exception" test_inline_exception;
    case "nested submit and await" test_nested_submit;
    case "shutdown" test_shutdown_rejects_submit;
    case "default jobs override" test_default_jobs_override;
    case "bank reuse and exclusivity" test_bank_reuse_and_exclusivity;
  ]
