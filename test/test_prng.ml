open Dbp_util
open Helpers

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

(* Pinned reference vectors: the first 10 xoshiro256** outputs per seed,
   computed by an independent Python implementation of the published
   algorithms (splitmix64 expanding the seed into the four state words,
   then xoshiro256** next()). Any change to the seeding path, the mixing
   constants, or the rotation amounts — including a silent sign/overflow
   slip in the Int64 arithmetic — shifts every stream and fails here.
   The seeds cover 0, small values, a 62-bit value and -1 (all-ones
   state injection). *)
let reference_vectors =
  [
    ( 0,
      [| "99ec5f36cb75f2b4"; "bf6e1f784956452a"; "1a5f849d4933e6e0";
         "6aa594f1262d2d2c"; "bba5ad4a1f842e59"; "ffef8375d9ebcaca";
         "6c160deed2f54c98"; "8920ad648fc30a3f"; "db032c0ba7539731";
         "eb3a475a3e749a3d" |] );
    ( 1,
      [| "b3f2af6d0fc710c5"; "853b559647364cea"; "92f89756082a4514";
         "642e1c7bc266a3a7"; "b27a48e29a233673"; "24c123126ffda722";
         "123004ef8df510e6"; "61954dcc47b1e89d"; "ddfdb48ab9ed4a21";
         "8d3cdb8c3aa5b1d0" |] );
    ( 2,
      [| "1a28690da8a8d057"; "b9bb8042daedd58a"; "2f1829af001ef205";
         "bf733e63d139683d"; "afa78247c6a82034"; "3c69a1b6d15cf0d0";
         "a5a9fdd18948c400"; "3813d2654a981e91"; "9be35597c9c97bfa";
         "bfc5e80fd0b75f32" |] );
    ( 42,
      [| "15780b2e0c2ec716"; "6104d9866d113a7e"; "ae17533239e499a1";
         "ecb8ad4703b360a1"; "fde6dc7fe2ec5e64"; "c50da53101795238";
         "b82154855a65ddb2"; "d99a2743ebe60087"; "c2e96e726e97647e";
         "9556615f775fbc3d" |] );
    ( 123456789,
      [| "d1eea10c836f0cc2"; "e1bb9dfa08f02548"; "1503f3b726a1b888";
         "88bf5a022cf9d5c2"; "de0f231c26906fe1"; "7bf14df7468f6bd5";
         "5a0e9d6a14c72b3f"; "a6d8390aa53d505c"; "23bede40b33d1ffa";
         "31b846ab55c198dd" |] );
    ( 4611686018427387903,
      [| "6a2df487bd4abde8"; "7089a21212eab9fc"; "81c431e01d397a88";
         "367a434d4b649925"; "3552cc64bfea0899"; "10dfa2f3c87ebcd8";
         "bfef86687180de25"; "e6602b4c3a69ef87"; "286e2eae5b0b4b02";
         "88ad1bedde4398bf" |] );
    ( -1,
      [| "8f5520d52a7ead08"; "c476a018caa1802d"; "81de31c0d260469e";
         "bf658d7e065f3c2f"; "913593fda1bca32a"; "bb535e93941ba525";
         "5ecda415c3c6dfde"; "c487398fc9de9ae2"; "a06746dbb57c4d62";
         "9d414196fdf05c8a" |] );
  ]

let test_reference_vectors () =
  List.iter
    (fun (seed, expected) ->
      let t = Prng.create ~seed in
      Array.iteri
        (fun i hex ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d output %d" seed i)
            hex
            (Printf.sprintf "%016Lx" (Prng.bits64 t)))
        expected)
    reference_vectors

let test_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy tracks" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independent () =
  let parent = Prng.create ~seed:7 in
  let child = Prng.split parent in
  let x = Prng.bits64 parent and y = Prng.bits64 child in
  check_bool "parent and child differ" true (not (Int64.equal x y))

let test_int_below_range () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Prng.int_below t 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done;
  check_raises_invalid "zero bound" (fun () -> Prng.int_below t 0)

let test_int_below_uniform () =
  let t = Prng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Prng.int_below t 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expected)
    buckets

let test_int_in_range () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int_in_range t ~lo:(-3) ~hi:3 in
    check_bool "in range" true (x >= -3 && x <= 3)
  done;
  check_int "degenerate" 9 (Prng.int_in_range t ~lo:9 ~hi:9);
  check_raises_invalid "inverted" (fun () -> Prng.int_in_range t ~lo:1 ~hi:0)

let test_float_unit () =
  let t = Prng.create ~seed:13 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Prng.float_unit t in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0);
    sum := !sum +. x
  done;
  check_float ~eps:0.01 "mean near 1/2" 0.5 (!sum /. float_of_int n)

let test_exponential () =
  let t = Prng.create ~seed:17 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential t ~mean:4.0 in
    check_bool "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  check_float ~eps:0.15 "mean" 4.0 (!sum /. float_of_int n);
  check_raises_invalid "bad mean" (fun () -> Prng.exponential t ~mean:0.0)

let test_normal () =
  let t = Prng.create ~seed:19 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prng.normal t ~mu:2.0 ~sigma:3.0) in
  check_float ~eps:0.1 "mean" 2.0 (Stats.mean xs);
  check_float ~eps:0.1 "stddev" 3.0 (Stats.stddev xs)

let test_pareto () =
  let t = Prng.create ~seed:23 in
  for _ = 1 to 1000 do
    check_bool "above x_min" true (Prng.pareto t ~alpha:2.0 ~x_min:1.5 >= 1.5)
  done;
  check_raises_invalid "bad alpha" (fun () -> Prng.pareto t ~alpha:0.0 ~x_min:1.0)

let check_poisson_mean seed lambda =
  let t = Prng.create ~seed in
  let n = 30_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.poisson t ~lambda
  done;
  check_float ~eps:(0.05 *. (lambda +. 1.0)) "poisson mean" lambda
    (float_of_int !sum /. float_of_int n)

let test_poisson () =
  check_poisson_mean 29 0.5;
  check_poisson_mean 31 5.0;
  check_poisson_mean 37 80.0;
  let t = Prng.create ~seed:41 in
  check_int "lambda 0" 0 (Prng.poisson t ~lambda:0.0);
  check_raises_invalid "negative" (fun () -> Prng.poisson t ~lambda:(-1.0))

(* Pinned draw sequences captured from the original recursive
   implementation (halve lambda until <= 30, sum two half-lambda draws;
   halving by 2.0 is exact in binary floating point, so the iterative
   rewrite must consume the PRNG identically). A change to the split
   threshold, the splitting order, or the product-method loop shifts
   these sequences and fails here. The lambda = 10_000 case is the
   stack-depth regression: the recursive version split it 9 levels deep,
   1024 leaf draws per sample. Format: (seed, lambda, leading draws). *)
let poisson_pins =
  [
    (1, 0.5, [ 1; 0; 0; 1; 0; 0; 1; 3; 0; 1; 0; 0 ]);
    (7, 2.0, [ 6; 0; 1; 5; 1; 1; 1; 3; 0; 1; 1; 1 ]);
    (2, 5.0, [ 5; 9; 4; 5; 6; 2; 5; 7; 3; 5; 8; 4 ]);
    (3, 30.0, [ 33; 31; 39; 23; 29; 34; 29; 34; 28; 37; 30; 36 ]);
    (4, 80.0, [ 74; 83; 81; 79; 72; 77; 84; 75; 75; 62; 92; 86 ]);
    (5, 1000.0, [ 991; 1042; 1005; 1004; 1010; 1041; 1005; 963 ]);
    (6, 10000.0, [ 10088; 10086; 9925; 9985 ]);
  ]

let test_poisson_pinned () =
  List.iter
    (fun (seed, lambda, expected) ->
      let t = Prng.create ~seed in
      List.iteri
        (fun i want ->
          check_int
            (Printf.sprintf "seed %d lambda %g draw %d" seed lambda i)
            want
            (Prng.poisson t ~lambda))
        expected)
    poisson_pins

let test_bernoulli () =
  let t = Prng.create ~seed:43 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli t ~p:0.3 then incr hits
  done;
  check_float ~eps:0.02 "frequency" 0.3 (float_of_int !hits /. float_of_int n)

let test_shuffle_permutation () =
  let t = Prng.create ~seed:47 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_choice () =
  let t = Prng.create ~seed:53 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Prng.choice t a) a)
  done;
  check_raises_invalid "empty" (fun () -> Prng.choice t [||])

let suite =
  [
    case "determinism" test_determinism;
    case "pinned reference vectors" test_reference_vectors;
    case "seeds differ" test_seeds_differ;
    case "copy" test_copy;
    case "split independence" test_split_independent;
    case "int_below range" test_int_below_range;
    slow_case "int_below uniformity" test_int_below_uniform;
    case "int_in_range" test_int_in_range;
    case "float_unit" test_float_unit;
    case "exponential" test_exponential;
    case "normal" test_normal;
    case "pareto" test_pareto;
    case "poisson" test_poisson;
    case "poisson pinned draws" test_poisson_pinned;
    case "bernoulli" test_bernoulli;
    case "shuffle" test_shuffle_permutation;
    case "choice" test_choice;
  ]
