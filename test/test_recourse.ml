(* Bounded-recourse wrapper: k = 0 bit-identity against the unwrapped
   policy, budget compliance under the validator's migration oracle,
   cost monotonicity in k on pinned seeds, and the
   OPT_R <= cost(k+1) <= cost(k) <= cost(0) sandwich on a hand-built
   instance whose repacking optimum is known exactly. *)

open Dbp_instance
open Dbp_sim
open Helpers

let all_policies ~mu_hint =
  [
    ("HA", Dbp_core.Ha.policy ());
    ("CDFF", Dbp_core.Cdff.policy ());
    ("FF", Dbp_baselines.Any_fit.first_fit);
    ("BF", Dbp_baselines.Any_fit.best_fit);
    ("WF", Dbp_baselines.Any_fit.worst_fit);
    ("NF", Dbp_baselines.Any_fit.next_fit);
    ("CD", Dbp_baselines.Classify_duration.policy ());
    ("RT", Dbp_baselines.Rt_classify.auto ~mu_hint);
    ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
  ]

let workloads ~seed =
  [
    ("general", Dbp_experiments.Workload_defs.general ~mu:16 ~seed);
    ("uniform", Dbp_experiments.Workload_defs.general_uniform ~mu:16 ~seed);
    ("aligned", Dbp_experiments.Workload_defs.aligned ~mu:16 ~seed);
  ]

(* --- k = 0 bit-identity --- *)

(* wrap ~k:0 must return the factory physically unchanged, so every
   observable — including the full series and the assignment log — is
   that of the unwrapped policy. *)
let prop_k0_bit_identical =
  qcase ~count:8 ~name:"k=0 wrap is bit-identical for every policy"
    (fun seed ->
      List.for_all
        (fun (_, inst) ->
          List.for_all
            (fun (_, factory) ->
              let base = Engine.run factory inst in
              let wrapped = Engine.run (Recourse.wrap ~k:0 factory) inst in
              base.name = wrapped.name
              && base.cost = wrapped.cost
              && base.bins_opened = wrapped.bins_opened
              && base.max_open = wrapped.max_open
              && wrapped.moves = 0
              && base.series = wrapped.series
              && Bin_store.assignment base.store
                 = Bin_store.assignment wrapped.store)
            (all_policies ~mu_hint:16.0))
        (workloads ~seed))
    QCheck2.Gen.(int_range 0 1_000_000)

let test_k0_is_physically_same () =
  let factory = Dbp_baselines.Any_fit.first_fit in
  check_bool "same closure" true (Recourse.wrap ~k:0 factory == factory)

(* --- budget compliance --- *)

(* The validator re-checks every logged move against the declared
   budget: structurally (open destination with capacity, gapless
   lifetimes) and arithmetically (<= k per event, or <= k x arrivals
   amortized). A clean report means the wrapper respected its k. *)
let prop_budget_respected =
  qcase ~count:6 ~name:"wrapped policies stay within the declared budget"
    (fun (seed, k) ->
      let configs =
        [
          (Recourse.Per_event, Recourse.Close_emptiest);
          (Recourse.Per_event, Recourse.Consolidate);
          (Recourse.Amortized, Recourse.Waste_threshold 1.25);
        ]
      in
      List.for_all
        (fun (_, inst) ->
          List.for_all
            (fun (mode, strategy) ->
              List.for_all
                (fun (_, factory) ->
                  let wrapped = Recourse.wrap ~k ~mode ~strategy factory in
                  let _, vs =
                    Dbp_check.Validator.run ~budget:(k, mode) wrapped inst
                  in
                  vs = [])
                (all_policies ~mu_hint:16.0))
            configs)
        (workloads ~seed))
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 3))

let test_over_budget_detected () =
  (* Declare a tighter budget than the wrapper actually uses: every
     executed move is then an over-move the migration oracle must flag. *)
  let inst = Dbp_experiments.Workload_defs.general ~mu:16 ~seed:5 in
  let wrapped = Recourse.wrap ~k:2 Dbp_baselines.Any_fit.first_fit in
  let res, vs =
    Dbp_check.Validator.run ~budget:(0, Recourse.Per_event) wrapped inst
  in
  check_bool "moves happened" true (res.moves > 0);
  check_bool "migration oracle fires" true
    (List.exists (fun (v : Dbp_check.Violation.t) -> v.oracle = "migration") vs)

(* --- monotonicity on pinned seeds --- *)

let test_cost_monotone_in_k () =
  (* Budgets up to k = 4 are monotone on these pinned seeds for every
     listed policy. Past that, strict monotonicity is not a theorem of
     greedy evacuation: every executed plan is individually net-gain
     (the clairvoyant benefit guard in [Recourse.plan_close] enforces
     saving > summed destination extension), but a beneficial close
     changes the inner policy's *later* placements, and with a larger
     budget those path effects can cost a few ticks. So k = 8 is held
     to an oracle-backed bound instead: the cost stays above the
     paper's certified lower bound on OPT_R and within 1% of the k = 4
     cost. (The deterministic overshoot itself is pinned in
     [test_k8_overshoot_repro].) *)
  List.iter
    (fun seed ->
      let inst = Dbp_experiments.Workload_defs.general ~mu:64 ~seed in
      let floor = (Dbp_offline.Bounds.compute inst).lower in
      List.iter
        (fun (name, factory) ->
          let cost k = (Engine.run (Recourse.wrap ~k factory) inst).cost in
          let costs = List.map cost [ 0; 1; 2; 4 ] in
          let rec mono = function
            | a :: (b :: _ as rest) -> a >= b && mono rest
            | _ -> true
          in
          if not (mono costs) then
            Alcotest.failf "%s seed %d: costs not monotone: %s" name seed
              (String.concat " " (List.map string_of_int costs));
          let c4 = List.nth costs 3 and c8 = cost 8 in
          let slack = (c4 + 99) / 100 in
          if c8 < floor then
            Alcotest.failf "%s seed %d: k=8 cost %d below OPT_R bound %d" name
              seed c8 floor;
          if c8 > c4 + slack then
            Alcotest.failf
              "%s seed %d: k=8 cost %d exceeds k=4 cost %d by more than 1%%"
              name seed c8 c4)
        [
          ("FF", Dbp_baselines.Any_fit.first_fit);
          ("BF", Dbp_baselines.Any_fit.best_fit);
          ("HA", Dbp_core.Ha.policy ());
          ("CDFF", Dbp_core.Cdff.policy ());
        ])
    [ 1; 2; 3 ]

let test_k8_overshoot_repro () =
  (* The deterministic residue of the old "sporadically overshoots"
     caveat, pinned: general mu = 64, seed 1, FF. Raising the budget
     from 4 to 8 lets an early (individually net-gain) close steer FF
     into slightly worse later placements — 7 ticks here, bracketed by
     the oracle: both costs sit well above the certified OPT_R lower
     bound, and the overshoot is under 1%. These exact values are the
     repro; a change in strategy accounting moves them and must be
     re-justified. *)
  let inst = Dbp_experiments.Workload_defs.general ~mu:64 ~seed:1 in
  let cost k =
    (Engine.run (Recourse.wrap ~k Dbp_baselines.Any_fit.first_fit) inst).cost
  in
  let floor = (Dbp_offline.Bounds.compute inst).lower in
  let c4 = cost 4 and c8 = cost 8 in
  check_int "k=4 cost (pinned)" 849 c4;
  check_int "k=8 cost (pinned overshoot)" 856 c8;
  check_bool "both above the OPT_R lower bound" true (floor <= c4 && floor <= c8);
  check_bool "overshoot under 1%" true (c8 - c4 <= (c4 + 99) / 100)

(* --- the sandwich: OPT_R <= cost(k+1) <= cost(k) <= cost(0) --- *)

(* Four items, capacity 1:
     a = 0.60 over [0,10)    b = 0.50 over [0,6)
     d = 0.30 over [0,3)     c = 0.35 over [1,10)
   FF packs {a,d} and then must open a second bin for b (0.6+0.5 > 1)
   and keep it alive for c: two bins over [0,10) = cost 20.
   One move (b's bin drains at t=6; c fits beside a: 0.6+0.35 <= 1)
   closes the second bin at 6: cost 10 + 6 = 16. OPT_R = 16 exactly —
   the load profile needs 2 bins on [0,6) and ceil(0.95) = 1 after. *)
let sandwich_instance =
  Instance.of_items
    [
      item ~id:0 ~a:0 ~d:10 ~s:0.6;
      item ~id:1 ~a:0 ~d:3 ~s:0.3;
      item ~id:2 ~a:0 ~d:6 ~s:0.5;
      item ~id:3 ~a:1 ~d:10 ~s:0.35;
    ]

let test_sandwich () =
  let opt = (Dbp_offline.Opt_repack.exact sandwich_instance).cost in
  check_int "OPT_R" 16 opt;
  let cost k =
    (Engine.run
       (Recourse.wrap ~k ~strategy:Recourse.Consolidate
          Dbp_baselines.Any_fit.first_fit)
       sandwich_instance)
      .cost
  in
  check_int "zero recourse" 20 (cost 0);
  check_int "one move reaches OPT_R" 16 (cost 1);
  check_int "more budget cannot hurt" 16 (cost 2);
  check_bool "sandwich" true (opt <= cost 2 && cost 2 <= cost 1 && cost 1 <= cost 0)

(* --- strategies and modes --- *)

let test_strategy_of_string () =
  check_bool "close-emptiest" true
    (Recourse.strategy_of_string "close-emptiest" = Some Recourse.Close_emptiest);
  check_bool "emptiest alias" true
    (Recourse.strategy_of_string "emptiest" = Some Recourse.Close_emptiest);
  check_bool "consolidate" true
    (Recourse.strategy_of_string "consolidate" = Some Recourse.Consolidate);
  check_bool "waste default" true
    (Recourse.strategy_of_string "waste" = Some (Recourse.Waste_threshold 1.5));
  check_bool "waste factor" true
    (Recourse.strategy_of_string "waste:2.5" = Some (Recourse.Waste_threshold 2.5));
  check_bool "waste below 1 rejected" true
    (Recourse.strategy_of_string "waste:0.5" = None);
  check_bool "unknown" true (Recourse.strategy_of_string "nope" = None)

let test_invalid_args () =
  check_raises_invalid "negative k" (fun () ->
      Recourse.wrap ~k:(-1) Dbp_baselines.Any_fit.first_fit);
  check_raises_invalid "waste factor < 1" (fun () ->
      Recourse.wrap ~k:1 ~strategy:(Recourse.Waste_threshold 0.9)
        Dbp_baselines.Any_fit.first_fit)

(* --- vector instances --- *)

let test_vector_instances () =
  (* d = 2: moves must respect capacity in both dimensions; the
     validator re-sums every dimension after each event. *)
  let resource =
    {
      Dbp_workloads.Resource_shape.dims = 2;
      shape = Dbp_workloads.Resource_shape.Correlated 0.8;
      dim_mu = [||];
    }
  in
  let inst =
    Dbp_experiments.Workload_defs.general_vec ~resource ~mu:16 ~seed:3
  in
  let wrapped = Recourse.wrap ~k:2 Dbp_baselines.Any_fit.first_fit in
  let res, vs = Dbp_check.Validator.run ~budget:(2, Recourse.Per_event) wrapped inst in
  check_bool "clean" true (vs = []);
  check_bool "repacking actually ran" true (res.moves > 0)

(* --- streaming --- *)

let test_stream_with_recourse_matches_run () =
  let config = { Dbp_workloads.Cloud_traces.default with days = 1 } in
  let wrapped = Recourse.wrap ~k:2 Dbp_baselines.Any_fit.best_fit in
  let inst =
    Event_source.to_instance
      (Dbp_workloads.Cloud_traces.stream ~config ~seed:2 ())
  in
  let r = Engine.run wrapped inst in
  let s =
    Engine.Stream.run ~track_items:true wrapped
      (Dbp_workloads.Cloud_traces.stream ~config ~seed:2 ())
  in
  check_int "cost" r.cost s.result.cost;
  check_int "bins_opened" r.bins_opened s.result.bins_opened;
  check_int "max_open" r.max_open s.result.max_open;
  check_int "moves" r.moves s.result.moves;
  check_int "moved_units" r.moved_units s.result.moved_units

let suite =
  [
    prop_k0_bit_identical;
    case "k=0 returns the factory itself" test_k0_is_physically_same;
    prop_budget_respected;
    case "over-budget run is detected" test_over_budget_detected;
    slow_case "cost monotone in k on pinned seeds" test_cost_monotone_in_k;
    slow_case "k=8 path-dependence overshoot pinned" test_k8_overshoot_repro;
    case "OPT_R sandwich on a known instance" test_sandwich;
    case "strategy_of_string" test_strategy_of_string;
    case "invalid arguments" test_invalid_args;
    case "vector (2d) instances" test_vector_instances;
    case "stream with recourse matches run" test_stream_with_recourse_matches_run;
  ]
