(* Differential testing: naive, direct transliterations of Algorithm 1
   (HA) and Algorithm 2 (CDFF) — plain lists, linear scans, no segment
   trees, no Fit_group — must make *identical* packing decisions to the
   optimized implementations on random inputs. This pins the optimized
   code to the paper's pseudocode, not just to cost-level invariants. *)

open Dbp_util
open Dbp_instance
open Dbp_sim
open Helpers

(* ---- naive Algorithm 1 ---- *)

let naive_ha store =
  let gn : Bin_store.bin_id list ref = ref [] in
  let cd : (int * int, Bin_store.bin_id list ref) Hashtbl.t = Hashtbl.create 16 in
  let type_load : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let open_bins bins =
    List.filter (fun b -> Bin_store.is_open store b) !bins
  in
  let first_fit bins (r : Item.t) =
    List.find_opt
      (fun b -> Load.fits r.size ~into:(Bin_store.load store b))
      (open_bins bins)
  in
  let threshold i = 1.0 /. (2.0 *. sqrt (float_of_int i)) in
  let on_arrival ~now (r : Item.t) =
    let ty = Item.ha_type r in
    let i = fst ty in
    let total =
      Option.value (Hashtbl.find_opt type_load ty) ~default:0 + Load.to_units r.size
    in
    Hashtbl.replace type_load ty total;
    let cd_bins =
      match Hashtbl.find_opt cd ty with
      | Some bins -> bins
      | None ->
          let bins = ref [] in
          Hashtbl.replace cd ty bins;
          bins
    in
    let place bins label =
      match first_fit bins r with
      | Some b ->
          Bin_store.insert store b r;
          b
      | None ->
          let b = Bin_store.open_bin store ~now ~label in
          Bin_store.insert store b r;
          bins := !bins @ [ b ];
          b
    in
    if open_bins cd_bins <> [] then place cd_bins "CD"
    else if
      float_of_int total
      <= threshold i *. float_of_int Load.capacity
    then place gn "GN"
    else begin
      let b = Bin_store.open_bin store ~now ~label:"CD" in
      Bin_store.insert store b r;
      cd_bins := !cd_bins @ [ b ];
      b
    end
  in
  let on_departure ~now:_ (r : Item.t) ~bin:_ ~closed:_ =
    let ty = Item.ha_type r in
    let rest =
      Option.value (Hashtbl.find_opt type_load ty) ~default:0 - Load.to_units r.size
    in
    if rest > 0 then Hashtbl.replace type_load ty rest else Hashtbl.remove type_load ty
  in
  { Policy.name = "HA-naive"; on_arrival; on_departure; on_move = None }

(* ---- naive Algorithm 2 (with the segment partition) ---- *)

let naive_cdff store =
  let rows : (int, Bin_store.bin_id list ref) Hashtbl.t = Hashtbl.create 16 in
  let seg_start = ref 0 and seg_top = ref (-1) and have_seg = ref false in
  let on_arrival ~now (r : Item.t) =
    let cls = Item.length_class r in
    if (not !have_seg) || now >= !seg_start + Ints.pow2 !seg_top then begin
      Hashtbl.reset rows;
      have_seg := true;
      seg_start := now;
      seg_top := cls
    end;
    if now = !seg_start && cls > !seg_top then begin
      (* shift rows down *)
      let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) rows [] in
      Hashtbl.reset rows;
      List.iter
        (fun (k, v) -> Hashtbl.replace rows (k + cls - !seg_top) v)
        entries;
      seg_top := cls
    end;
    let m =
      if now = !seg_start then !seg_top else min !seg_top (Ints.ntz (now - !seg_start))
    in
    let row = max 0 (m - cls) in
    let bins =
      match Hashtbl.find_opt rows row with
      | Some bins -> bins
      | None ->
          let bins = ref [] in
          Hashtbl.replace rows row bins;
          bins
    in
    let live = List.filter (fun b -> Bin_store.is_open store b) !bins in
    match
      List.find_opt (fun b -> Load.fits r.size ~into:(Bin_store.load store b)) live
    with
    | Some b ->
        Bin_store.insert store b r;
        b
    | None ->
        let b = Bin_store.open_bin store ~now ~label:"row" in
        Bin_store.insert store b r;
        bins := !bins @ [ b ];
        b
  in
  let on_departure ~now:_ _ ~bin:_ ~closed:_ = () in
  { Policy.name = "CDFF-naive"; on_arrival; on_departure; on_move = None }

(* ---- equivalence checks ---- *)

let same_assignment res_a res_b =
  Bin_store.assignment res_a.Engine.store = Bin_store.assignment res_b.Engine.store

let check_equiv name optimized naive inst =
  let a = Engine.run optimized inst in
  let b = Engine.run naive inst in
  if a.cost <> b.cost then
    Alcotest.failf "%s: costs differ (%d vs %d)" name a.cost b.cost;
  if a.bins_opened <> b.bins_opened then
    Alcotest.failf "%s: bin counts differ (%d vs %d)" name a.bins_opened b.bins_opened;
  if not (same_assignment a b) then Alcotest.failf "%s: assignments differ" name

let gen_seed = QCheck2.Gen.(int_range 0 1_000_000)

let prop_ha_equiv_random =
  qcase ~count:80 ~name:"optimized HA = naive Algorithm 1 (random inputs)"
    (fun seed ->
      let inst =
        random_instance (Prng.create ~seed) ~n:100 ~max_time:80 ~max_duration:60
      in
      check_equiv "HA" (Dbp_core.Ha.policy ()) naive_ha inst;
      true)
    gen_seed

let prop_cdff_equiv_random =
  qcase ~count:80 ~name:"optimized CDFF = naive Algorithm 2 (random inputs)"
    (fun seed ->
      let inst =
        random_instance (Prng.create ~seed) ~n:100 ~max_time:80 ~max_duration:60
      in
      check_equiv "CDFF" (Dbp_core.Cdff.policy ()) naive_cdff inst;
      true)
    gen_seed

let prop_cdff_equiv_aligned =
  qcase ~count:60 ~name:"optimized CDFF = naive Algorithm 2 (aligned inputs)"
    (fun seed ->
      let inst = Dbp_workloads.Aligned_random.generate ~seed () in
      check_equiv "CDFF" (Dbp_core.Cdff.policy ()) naive_cdff inst;
      true)
    gen_seed

let test_equiv_binary () =
  List.iter
    (fun mu ->
      let inst = Dbp_workloads.Binary_input.generate ~mu in
      check_equiv "CDFF/binary" (Dbp_core.Cdff.policy ()) naive_cdff inst;
      check_equiv "HA/binary" (Dbp_core.Ha.policy ()) naive_ha inst)
    [ 4; 16; 64 ]

let test_equiv_pinning () =
  let inst = Dbp_workloads.Pinning.generate ~mu:16 () in
  check_equiv "HA/pinning" (Dbp_core.Ha.policy ()) naive_ha inst

let test_equiv_adversary () =
  (* Run the adversary against the optimized HA, then replay the released
     instance against both implementations. *)
  let outcome = Dbp_workloads.Adversary.run ~mu:256 (Dbp_core.Ha.policy ()) in
  check_equiv "HA/adversary-replay" (Dbp_core.Ha.policy ()) naive_ha outcome.instance

let suite =
  [
    prop_ha_equiv_random;
    prop_cdff_equiv_random;
    prop_cdff_equiv_aligned;
    case "binary inputs" test_equiv_binary;
    case "pinning" test_equiv_pinning;
    case "adversary replay" test_equiv_adversary;
  ]
