open Dbp_sim
open Dbp_report
open Helpers

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

(* --- table --- *)

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check_bool "header" true (contains ~needle:"name" s);
  check_bool "separator" true (contains ~needle:"-----" s);
  check_bool "padded rows align" true (contains ~needle:"alpha  1" s);
  check_raises_invalid "bad row" (fun () -> Table.add_row t [ "only-one" ]);
  check_raises_invalid "no columns" (fun () -> Table.create ~columns:[])

let test_table_markdown () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  let s = Table.render_markdown t in
  check_bool "pipes" true (contains ~needle:"| a | b |" s);
  check_bool "rule" true (contains ~needle:"| --- | --- |" s);
  check_bool "row" true (contains ~needle:"| 1 | 2 |" s)

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.142" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1" (Table.cell_float ~decimals:1 3.14159);
  Alcotest.(check string) "ratio" "2.50x" (Table.cell_ratio 2.5)

(* --- csv --- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_to_string () =
  let s = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ] in
  Alcotest.(check string) "document" "x,y\n1,2\n3,\"4,5\"\n" s

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "dbp_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file ~path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) "roundtrip" "a\n1\n2\n" content)

(* --- gantt --- *)

let run_ff inst = Engine.run Dbp_baselines.Any_fit.first_fit inst

let test_items_chart () =
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.5) ] in
  let s = Gantt.items_chart inst in
  check_bool "class header" true (contains ~needle:"class 2" s);
  check_bool "item a drawn" true (contains ~needle:"aaaa" s);
  check_bool "item b drawn" true (contains ~needle:"bbbb" s)

let test_packing_chart () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  let res = run_ff inst in
  let s = Gantt.packing_chart inst res.store in
  check_bool "two bins" true (contains ~needle:"b0" s && contains ~needle:"b1" s);
  check_bool "labels" true (contains ~needle:"FF" s)

let test_snapshot () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  let res = run_ff inst in
  let s = Gantt.snapshot inst res.store ~at:3 in
  check_bool "both open at 3" true (contains ~needle:"b0" s && contains ~needle:"b1" s);
  check_bool "load bar" true (contains ~needle:"#######" s);
  let s5 = Gantt.snapshot inst res.store ~at:5 in
  check_bool "b0 closed at 5" true (not (contains ~needle:"b0 " s5))

let test_gantt_scaling () =
  (* A horizon much wider than the chart must still render within
     width. *)
  let inst = instance [ (0, 10_000, 0.5) ] in
  let s = Gantt.items_chart ~width:40 inst in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         check_bool "line width bounded" true (String.length line < 70))

(* --- goldens ---

   Exact expected output, character for character. The report layer is
   the last stop before human eyes and external tools; "looks roughly
   right" substring checks would let padding, separator or quoting
   regressions through silently. *)

let test_table_golden () =
  let t = Table.create ~columns:[ "algo"; "cost" ] in
  Table.add_row t [ "HA"; "19" ];
  Table.add_row t [ "CDFF"; "7" ];
  Alcotest.(check string)
    "two-space gutter, columns padded to widest cell, trailing pad kept"
    "algo  cost\n----  ----\nHA    19  \nCDFF  7   \n" (Table.render t);
  Alcotest.(check string) "markdown variant"
    "| algo | cost |\n| --- | --- |\n| HA | 19 |\n| CDFF | 7 |\n"
    (Table.render_markdown t)

let test_csv_golden () =
  Alcotest.(check string) "quoting only where RFC 4180 demands it"
    "id,label\n1,plain\n2,\"comma,inside\"\n3,\"quote\"\"inside\"\n4,\"line\nbreak\"\n"
    (Csv.to_string
       ~header:[ "id"; "label" ]
       [
         [ "1"; "plain" ];
         [ "2"; "comma,inside" ];
         [ "3"; "quote\"inside" ];
         [ "4"; "line\nbreak" ];
       ])

(* The Figure 3 packing: CDFF on the binary input sigma_8. The chart is
   pinned in full — row order is bin opening order, labels are CDFF's
   row assignments (Lemma 5.5), letters are items in instance order, and
   '*' marks cells where a bin holds more than one item. *)
let test_gantt_figure3_golden () =
  let inst = Dbp_workloads.Binary_input.generate ~mu:8 in
  let res = Engine.run (Dbp_core.Cdff.policy ()) inst in
  Alcotest.(check string) "figure 3"
    ("b0 row3        |a       |\n" ^ "b1 row2        |ii      |\n"
   ^ "b2 row1        |mm*m    |\n" ^ "b3 row0        |o*******|\n"
   ^ "b4 row2        |    e   |\n" ^ "b5 row1        |    kk  |\n"
   ^ "b6 row1        |      g |\n")
    (Gantt.packing_chart inst res.store)

let test_svg_golden () =
  Alcotest.(check string) "exact document"
    ("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
   ^ "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"100\" height=\"50\" \
      viewBox=\"0 0 100 50\">\n"
   ^ "<rect x=\"0\" y=\"0\" width=\"10\" height=\"10\" fill=\"none\" \
      stroke=\"black\"/>\n"
   ^ "<text x=\"1\" y=\"1\" font-size=\"12\" fill=\"black\">a&lt;b</text>\n"
   ^ "</svg>\n")
    (Svg.to_string ~width:100.0 ~height:50.0
       [
         Svg.rect ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 ();
         Svg.text ~x:1.0 ~y:1.0 "a<b";
       ])

(* --- series --- *)

let test_series_plot () =
  let s =
    Series.plot
      [ { Series.label = "ha"; points = [| (1.0, 1.0); (2.0, 2.0); (3.0, 1.5) |] } ]
  in
  check_bool "frame" true (contains ~needle:"|" s);
  check_bool "legend" true (contains ~needle:"ha" s);
  check_raises_invalid "no points" (fun () ->
      ignore (Series.plot [ { Series.label = "x"; points = [||] } ]))

(* --- svg --- *)

let test_svg_elements () =
  let doc =
    Svg.to_string ~width:100.0 ~height:50.0
      [
        Svg.rect ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 ();
        Svg.line ~x1:0.0 ~y1:0.0 ~x2:5.0 ~y2:5.0 ();
        Svg.text ~x:1.0 ~y:1.0 "a<b";
        Svg.circle ~cx:1.0 ~cy:1.0 ~r:2.0 ();
        Svg.polyline ~points:[ (0.0, 0.0); (1.0, 1.0) ] ();
      ]
  in
  check_bool "xml header" true (contains ~needle:"<?xml" doc);
  check_bool "svg tag" true (contains ~needle:"<svg" doc);
  check_bool "escapes text" true (contains ~needle:"a&lt;b" doc);
  check_bool "polyline" true (contains ~needle:"polyline" doc)

let test_svg_line_chart () =
  let elements =
    Svg.line_chart ~width:300.0 ~height:200.0
      ~series:[ ("ha", [| (1.0, 1.0); (2.0, 1.5) |]) ]
      ()
  in
  check_bool "has elements" true (List.length elements > 5);
  let doc = Svg.to_string ~width:300.0 ~height:200.0 elements in
  check_bool "legend label" true (contains ~needle:">ha<" doc)

let suite =
  [
    case "table render" test_table_render;
    case "table markdown" test_table_markdown;
    case "table cells" test_table_cells;
    case "csv escape" test_csv_escape;
    case "csv to_string" test_csv_to_string;
    case "csv file roundtrip" test_csv_file_roundtrip;
    case "items chart" test_items_chart;
    case "packing chart" test_packing_chart;
    case "snapshot" test_snapshot;
    case "gantt scaling" test_gantt_scaling;
    case "table golden" test_table_golden;
    case "csv golden" test_csv_golden;
    case "gantt figure 3 golden" test_gantt_figure3_golden;
    case "svg golden" test_svg_golden;
    case "series plot" test_series_plot;
    case "svg elements" test_svg_elements;
    case "svg line chart" test_svg_line_chart;
  ]
