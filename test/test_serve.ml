(* Serve daemon core: protocol semantics, batch-split invariance, and
   the kill-restart-replay contract — a daemon restored from a snapshot
   answers the remaining commands byte-identically to one that never
   stopped. *)

open Helpers
module H = Dbp_binpack.Heuristics
module Serve = Dbp_sim.Serve

let check_lines = Alcotest.(check (array string))

(* Place commands for a generated instance, in arrival order — the same
   lines `dbp drive` would send. *)
let place_lines inst =
  Array.map
    (fun (r : Dbp_instance.Item.t) ->
      Printf.sprintf "place %d %d %d %.9f" r.id r.arrival r.departure
        (Dbp_util.Load.to_float r.size))
    (Dbp_instance.Instance.items inst)

let horizon inst =
  1
  + Array.fold_left
      (fun acc (r : Dbp_instance.Item.t) -> max acc r.departure)
      0
      (Dbp_instance.Instance.items inst)

let cloud ~seed =
  Dbp_workloads.Cloud_traces.generate
    ~config:{ Dbp_workloads.Cloud_traces.default with days = 1; base_rate = 1.5 }
    ~seed ()

let test_protocol_basics () =
  let t = Serve.create H.First_fit in
  let resp =
    Serve.exec_batch t
      [|
        "place 1 0 10 0.5";
        "place 2 0 10 0.6";
        "place 3 5 20 0.4";
        "depart 25";
        "stats";
        "quit";
        "stats";
      |]
  in
  check_lines "responses"
    [|
      "ok 0:0";
      "ok 0:1";
      "ok 0:0";
      "ok open=0";
      "ok cost=30 open=0 opened=2 max=2 items=3 clock=25 shards=1";
      "ok bye";
      "err daemon is shutting down";
    |]
    resp;
  check_bool "stopped after quit" true (Serve.stopped t)

let test_protocol_errors () =
  let t = Serve.create H.First_fit in
  let resp =
    Serve.exec_batch t
      [|
        "place 1 0 10 0.5";
        "place 1 2 8 0.3";
        "place 2 0 10 1.5";
        "place 3 0 5 0.2 0.9";
        "frobnicate";
        "depart x";
        "place 4 20 10 0.5";
      |]
  in
  check_bool "first ok" true (resp.(0) = "ok 0:0");
  check_bool "duplicate in batch" true
    (contains ~sub:"already placed in this batch" resp.(1));
  check_bool "oversize" true (contains ~sub:"size 1.5 > 1" resp.(2));
  check_bool "dims mismatch" true (contains ~sub:"2 size fields" resp.(3));
  check_bool "unknown verb" true (contains ~sub:"unknown command" resp.(4));
  check_bool "bad tick" true (contains ~sub:"malformed tick" resp.(5));
  check_bool "bad duration" true
    (contains ~sub:"non-positive duration" resp.(6));
  (* A live id is rejected across batches too; once its departure tick
     has been processed the id is free for reuse. *)
  let r2 = Serve.exec_batch t [| "place 1 3 6 0.1" |] in
  check_bool "still live across batches" true
    (contains ~sub:"still live" r2.(0));
  let r3 = Serve.exec_batch t [| "depart 12"; "place 1 13 15 0.1" |] in
  check_bool "id reusable after departure" true
    (String.length r3.(1) >= 2 && String.sub r3.(1) 0 2 = "ok")

let test_arrival_in_past_does_not_leak_id () =
  let t = Serve.create H.First_fit in
  let r = Serve.exec_batch t [| "place 1 10 20 0.5"; "place 2 5 30 0.5" |] in
  check_bool "placed" true (r.(0) = "ok 0:0");
  check_bool "past arrival rejected" true
    (contains ~sub:"arrival in the past" r.(1));
  (* The rejected placement must not have marked id 2 live. *)
  let r2 = Serve.exec_batch t [| "place 2 12 30 0.5" |] in
  check_bool "id free after rejection" true
    (String.length r2.(0) >= 2 && String.sub r2.(0) 0 2 = "ok")

(* Responses are a pure function of the command sequence: cutting the
   same lines into different batches (or using more shards' worth of
   Pool workers) changes nothing. *)
let test_batch_split_invariance () =
  let inst = cloud ~seed:5 in
  let lines =
    Array.append (place_lines inst)
      [| Printf.sprintf "depart %d" (horizon inst); "stats" |]
  in
  let one_shot = Serve.exec_batch (Serve.create ~shards:3 H.Best_fit) lines in
  let dribble =
    let t = Serve.create ~shards:3 H.Best_fit in
    Array.map (fun l -> (Serve.exec_batch t [| l |]).(0)) lines
  in
  check_lines "batching unobservable" one_shot dribble

(* Final stats after depart-past-everything equal the offline replay of
   the same items — the contract `dbp drive --verify` enforces. *)
let test_matches_offline_engine () =
  let inst = cloud ~seed:8 in
  let t = Serve.create H.First_fit in
  let resp = Serve.exec_batch t (place_lines inst) in
  Array.iter
    (fun r -> check_bool "placed" true (String.sub r 0 2 = "ok"))
    resp;
  ignore
    (Serve.exec_batch t [| Printf.sprintf "depart %d" (horizon inst) |]);
  let r = Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit inst in
  check_int "stats vs Engine.run"
    0
    (match
       Scanf.sscanf (Serve.stats_line t)
         "ok cost=%d open=%d opened=%d max=%d items=%d" (fun c op o m i ->
           if
             c = r.cost && op = 0 && o = r.bins_opened && m = r.max_open
             && i = Dbp_instance.Instance.length inst
           then 0
           else 1)
     with
    | v -> v
    | exception _ -> 2)

(* The tentpole acceptance test: run a daemon halfway, snapshot (via
   the JSON codec and via the file round-trip), rebuild in a "new
   process" (fresh daemon value — nothing shared), and replay the rest.
   Every remaining response, and the final stats, must be byte-equal to
   the uninterrupted daemon's. *)
let kill_restart_replay rule ~shards ~seed () =
  let inst = cloud ~seed in
  let lines =
    Array.append (place_lines inst)
      [| Printf.sprintf "depart %d" (horizon inst); "stats" |]
  in
  let n = Array.length lines in
  let cut = n / 2 in
  let prefix = Array.sub lines 0 cut in
  let suffix = Array.sub lines cut (n - cut) in
  let full = Serve.create ~shards ~seed rule in
  let full_resp = Serve.exec_batch full lines in
  let original = Serve.create ~shards ~seed rule in
  let prefix_resp = Serve.exec_batch original prefix in
  check_lines "prefix responses" (Array.sub full_resp 0 cut) prefix_resp;
  (* Serialize through a byte string — exactly what lands on disk. *)
  let snap =
    Dbp_util.Json.parse_exn (Dbp_util.Json.to_string (Serve.to_json original))
  in
  let restored = Serve.of_json snap in
  check_int "shards survive" shards (Serve.shard_count restored);
  let suffix_resp = Serve.exec_batch restored suffix in
  check_lines "replayed suffix byte-identical"
    (Array.sub full_resp cut (n - cut))
    suffix_resp;
  check_bool "final stats byte-identical" true
    (Serve.stats_line restored = Serve.stats_line full)

let test_file_roundtrip () =
  let inst = cloud ~seed:12 in
  let t = Serve.create ~shards:2 H.Worst_fit in
  ignore (Serve.exec_batch t (place_lines inst));
  let path = Filename.temp_file "dbp_serve" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let resp = Serve.exec_batch t [| "snapshot " ^ path |] in
      check_bool "snapshot ok" true
        (resp.(0) = Printf.sprintf "ok snapshot %s" path);
      check_bool "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
      let restored = Serve.restore_from_file path in
      check_bool "file round-trip stats" true
        (Serve.stats_line restored = Serve.stats_line t))

let check_raises_failure name f =
  match f () with
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "%s: expected Failure" name

let test_malformed_snapshots () =
  check_raises_failure "missing fields" (fun () ->
      ignore (Serve.of_json (Dbp_util.Json.Obj [ ("version", Dbp_util.Json.Int 1) ])));
  check_raises_failure "bad version" (fun () ->
      ignore (Serve.of_json (Dbp_util.Json.Obj [ ("version", Dbp_util.Json.Int 99) ])))

let suite =
  [
    case "protocol basics" test_protocol_basics;
    case "protocol errors" test_protocol_errors;
    case "rejected arrival does not leak its id" test_arrival_in_past_does_not_leak_id;
    case "batch splits are unobservable" test_batch_split_invariance;
    case "stats match offline Engine.run" test_matches_offline_engine;
    slow_case "kill-restart-replay FF" (kill_restart_replay H.First_fit ~shards:1 ~seed:3);
    slow_case "kill-restart-replay BF sharded" (kill_restart_replay H.Best_fit ~shards:3 ~seed:4);
    slow_case "kill-restart-replay NF" (kill_restart_replay H.Next_fit ~shards:1 ~seed:5);
    case "snapshot file round-trip" test_file_roundtrip;
    case "malformed snapshots raise" test_malformed_snapshots;
  ]
