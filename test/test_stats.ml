open Dbp_util
open Helpers

let test_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float ~eps:1e-9 "mean" 5.0 (Stats.mean xs);
  (* sample stddev with n-1 denominator *)
  check_float ~eps:1e-9 "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev xs);
  check_raises_invalid "empty mean" (fun () -> Stats.mean [||])

let test_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float ~eps:1e-9 "q0" 1.0 (Stats.quantile xs 0.0);
  check_float ~eps:1e-9 "q1" 4.0 (Stats.quantile xs 1.0);
  check_float ~eps:1e-9 "median interpolated" 2.5 (Stats.quantile xs 0.5);
  check_float ~eps:1e-9 "q1/3" 2.0 (Stats.quantile xs (1.0 /. 3.0));
  check_raises_invalid "out of range" (fun () -> Stats.quantile xs 1.5)

let test_summarize () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  check_int "n" 3 s.n;
  check_float ~eps:1e-9 "mean" 2.0 s.mean;
  check_float ~eps:1e-9 "min" 1.0 s.min;
  check_float ~eps:1e-9 "max" 3.0 s.max;
  check_float ~eps:1e-9 "median" 2.0 s.median

let test_ci95 () =
  check_float ~eps:1e-9 "single sample" 0.0 (Stats.ci95_half_width [| 1.0 |]);
  let xs = Array.make 100 5.0 in
  check_float ~eps:1e-9 "constant data" 0.0 (Stats.ci95_half_width xs)

(* Small samples must use Student-t critical values, not z = 1.96 —
   the normal approximation understates a 5-sample interval by ~30%. *)
let test_ci95_student () =
  check_float ~eps:1e-9 "t df=1" 12.706 (Stats.t95_critical ~df:1);
  check_float ~eps:1e-9 "t df=30" 2.042 (Stats.t95_critical ~df:30);
  check_float ~eps:1e-9 "t df=99 is z" 1.96 (Stats.t95_critical ~df:99);
  check_raises_invalid "df=0" (fun () -> ignore (Stats.t95_critical ~df:0));
  (* n=5: mean 3, sample variance 2.5, df=4 -> t = 2.776 *)
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float ~eps:1e-9 "n=5 uses t_4"
    (2.776 *. sqrt 2.5 /. sqrt 5.0)
    (Stats.ci95_half_width xs);
  (* n=100: df=99 is beyond the table -> z = 1.96 *)
  let ys = Array.init 100 (fun i -> float_of_int (i mod 2)) in
  check_float ~eps:1e-9 "n=100 uses 1.96"
    (1.96 *. Stats.stddev ys /. 10.0)
    (Stats.ci95_half_width ys)

let test_linear_fit_exact () =
  let x = [| 0.0; 1.0; 2.0; 3.0 |] in
  let y = Array.map (fun v -> (2.5 *. v) -. 1.0) x in
  let f = Stats.linear_fit ~x ~y in
  check_float ~eps:1e-9 "slope" 2.5 f.slope;
  check_float ~eps:1e-9 "intercept" (-1.0) f.intercept;
  check_float ~eps:1e-9 "r2" 1.0 f.r2

let test_linear_fit_noisy () =
  let rng = Prng.create ~seed:1 in
  let n = 200 in
  let x = Array.init n float_of_int in
  let y = Array.map (fun v -> (3.0 *. v) +. 10.0 +. Prng.normal rng ~mu:0.0 ~sigma:5.0) x in
  let f = Stats.linear_fit ~x ~y in
  check_float ~eps:0.1 "slope recovered" 3.0 f.slope;
  check_bool "r2 high but below 1" true (f.r2 > 0.95 && f.r2 < 1.0)

let test_linear_fit_errors () =
  check_raises_invalid "one point" (fun () -> Stats.linear_fit ~x:[| 1.0 |] ~y:[| 1.0 |]);
  check_raises_invalid "constant x" (fun () ->
      Stats.linear_fit ~x:[| 1.0; 1.0 |] ~y:[| 1.0; 2.0 |]);
  check_raises_invalid "length mismatch" (fun () ->
      Stats.linear_fit ~x:[| 1.0; 2.0 |] ~y:[| 1.0 |])

let test_pearson () =
  let x = [| 1.0; 2.0; 3.0 |] in
  check_float ~eps:1e-9 "perfect positive" 1.0 (Stats.pearson ~x ~y:x);
  check_float ~eps:1e-9 "perfect negative" (-1.0)
    (Stats.pearson ~x ~y:(Array.map (fun v -> -.v) x))

let prop_mean_bounds =
  qcase ~name:"min <= mean <= max"
    (fun l ->
      let xs = Array.of_list (List.map float_of_int l) in
      let s = Stats.summarize xs in
      s.min <= s.mean && s.mean <= s.max)
    QCheck2.Gen.(list_size (int_range 1 50) (int_range (-1000) 1000))

let prop_fit_residual_orthogonal =
  qcase ~name:"OLS residuals sum to ~0"
    (fun l ->
      let pts = Array.of_list l in
      let x = Array.mapi (fun i _ -> float_of_int i) pts in
      let y = Array.map float_of_int pts in
      let f = Stats.linear_fit ~x ~y in
      let resid =
        Array.mapi (fun i yi -> yi -. ((f.slope *. x.(i)) +. f.intercept)) y
      in
      Float.abs (Array.fold_left ( +. ) 0.0 resid) < 1e-6 *. float_of_int (Array.length pts))
    QCheck2.Gen.(list_size (int_range 2 60) (int_range (-100) 100))

let suite =
  [
    case "mean/stddev" test_mean_stddev;
    case "quantile" test_quantile;
    case "summarize" test_summarize;
    case "ci95" test_ci95;
    case "ci95 Student-t" test_ci95_student;
    case "linear fit exact" test_linear_fit_exact;
    case "linear fit noisy" test_linear_fit_noisy;
    case "linear fit errors" test_linear_fit_errors;
    case "pearson" test_pearson;
    prop_mean_bounds;
    prop_fit_residual_orthogonal;
  ]
