open Dbp_util
open Helpers

let test_basic () =
  let t = Timeline.create () in
  check_int "empty" 0 (Timeline.max_on t ~lo:0 ~hi:100);
  Timeline.add t ~lo:2 ~hi:5 ~units:3;
  check_int "inside" 3 (Timeline.max_on t ~lo:2 ~hi:5);
  check_int "value at" 3 (Timeline.value_at t 4);
  check_int "before" 0 (Timeline.value_at t 1);
  check_int "after" 0 (Timeline.value_at t 5);
  check_int "straddle" 3 (Timeline.max_on t ~lo:0 ~hi:10);
  check_int "disjoint" 0 (Timeline.max_on t ~lo:6 ~hi:10)

let test_overlap () =
  let t = Timeline.create () in
  Timeline.add t ~lo:0 ~hi:10 ~units:1;
  Timeline.add t ~lo:5 ~hi:15 ~units:2;
  check_int "first only" 1 (Timeline.max_on t ~lo:0 ~hi:5);
  check_int "overlap" 3 (Timeline.max_on t ~lo:5 ~hi:10);
  check_int "second only" 2 (Timeline.max_on t ~lo:10 ~hi:15);
  check_int "max overall" 3 (Timeline.max_on t ~lo:0 ~hi:20)

let test_negative_units () =
  let t = Timeline.create () in
  Timeline.add t ~lo:0 ~hi:10 ~units:5;
  Timeline.add t ~lo:3 ~hi:7 ~units:(-2);
  check_int "dip" 3 (Timeline.value_at t 5);
  check_int "max avoids dip" 5 (Timeline.max_on t ~lo:0 ~hi:10)

let test_errors () =
  let t = Timeline.create () in
  check_raises_invalid "empty add" (fun () -> Timeline.add t ~lo:3 ~hi:3 ~units:1);
  check_raises_invalid "empty query" (fun () -> ignore (Timeline.max_on t ~lo:3 ~hi:3))

(* Differential test vs a plain array model. *)
let prop_vs_array =
  qcase ~count:100 ~name:"matches array model"
    (fun ops ->
      let n = 64 in
      let t = Timeline.create () in
      let model = Array.make n 0 in
      let ok = ref true in
      List.iter
        (fun (a, b, u) ->
          let lo = min a b and hi = max a b in
          let lo = lo mod n and hi = (hi mod n) + 1 in
          let u = (u mod 9) - 4 in
          Timeline.add t ~lo ~hi ~units:u;
          for i = lo to hi - 1 do
            model.(i) <- model.(i) + u
          done;
          (* check a few random ranges via the same op values *)
          let q_lo = lo and q_hi = min n (hi + 3) in
          let expected = ref min_int in
          for i = q_lo to q_hi - 1 do
            if model.(i) > !expected then expected := model.(i)
          done;
          let expected = if q_lo >= n then 0 else !expected in
          if Timeline.max_on t ~lo:q_lo ~hi:q_hi <> expected then ok := false;
          if Timeline.value_at t (q_lo mod n) <> model.(q_lo mod n) then ok := false)
        ops;
      !ok)
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 63) (int_range 0 63) (int_range 0 100)))

(* Coalescing keeps the boundary map minimal without changing the step
   function: queries still match the array model, and the boundary count
   equals the exact number of value transitions (extending the model
   with 0 outside the touched window) — in particular it never exceeds
   twice the number of maximal constant runs, however many overlapping
   [add]s built the profile. *)
let prop_coalesced_minimal =
  qcase ~count:100 ~name:"boundary count = value transitions"
    (fun ops ->
      let n = 64 in
      let t = Timeline.create () in
      let model = Array.make n 0 in
      List.iter
        (fun (a, b, u) ->
          let lo = min a b and hi = max a b in
          let lo = lo mod n and hi = (hi mod n) + 1 in
          let u = (u mod 9) - 4 in
          Timeline.add t ~lo ~hi ~units:u;
          for i = lo to hi - 1 do
            model.(i) <- model.(i) + u
          done)
        ops;
      let ok = ref true in
      for i = 0 to n - 1 do
        if Timeline.value_at t i <> model.(i) then ok := false
      done;
      for lo = 0 to n - 8 do
        let expected = ref min_int in
        for i = lo to lo + 6 do
          if model.(i) > !expected then expected := model.(i)
        done;
        if Timeline.max_on t ~lo ~hi:(lo + 7) <> !expected then ok := false
      done;
      let transitions = ref (if model.(0) <> 0 then 1 else 0) in
      for i = 1 to n - 1 do
        if model.(i) <> model.(i - 1) then incr transitions
      done;
      if model.(n - 1) <> 0 then incr transitions;
      !ok && Timeline.boundaries t = !transitions)
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 63) (int_range 0 63) (int_range 0 100)))

let suite =
  [
    case "basic" test_basic;
    case "overlap" test_overlap;
    case "negative units" test_negative_units;
    case "errors" test_errors;
    prop_vs_array;
    prop_coalesced_minimal;
  ]
