open Dbp_util
open Helpers

let with_tracing f =
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.clear ();
      Trace.set_enabled false)
    f

let test_disabled () =
  check_bool "off by default" true (not (Trace.enabled ()));
  check_int "with_span passthrough" 7 (Trace.with_span "x" (fun () -> 7));
  Trace.end_span ();
  check_int "depth stays 0" 0 (Trace.depth ())

let test_nesting_lifo () =
  with_tracing (fun () ->
      Trace.begin_span "outer";
      check_int "depth 1" 1 (Trace.depth ());
      Trace.begin_span ~args:[ ("k", "v") ] "inner";
      check_int "depth 2" 2 (Trace.depth ());
      Trace.end_span ();
      check_int "inner closed first" 1 (Trace.depth ());
      Trace.end_span ();
      check_int "outer closed last" 0 (Trace.depth ());
      check_raises_invalid "underflow raises" (fun () -> Trace.end_span ()))

let test_exception_closes_span () =
  with_tracing (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
      check_int "span closed on exception" 0 (Trace.depth ()))

let test_unclosed_excluded () =
  with_tracing (fun () ->
      Trace.begin_span "dangling";
      (match Trace.to_json () with
      | Json.List events ->
          check_bool "open span not emitted" true
            (not
               (List.exists
                  (fun e -> Json.member "name" e = Some (Json.String "dangling"))
                  events))
      | _ -> Alcotest.fail "to_json is not an array");
      Trace.end_span ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_roundtrip () =
  with_tracing (fun () ->
      Trace.with_span "alpha" (fun () -> Trace.with_span "beta" (fun () -> ()));
      let path = Filename.temp_file "dbp_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.write ~path;
          match Json.parse (read_file path) with
          | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
          | Ok (Json.List events) ->
              let names =
                List.filter_map
                  (fun e ->
                    match Json.member "name" e with
                    | Some (Json.String n) -> Some n
                    | _ -> None)
                  events
              in
              check_bool "alpha present" true (List.mem "alpha" names);
              check_bool "beta present" true (List.mem "beta" names);
              check_bool "process metadata present" true
                (List.mem "process_name" names);
              (* Chrome trace-event shape: complete events carry ts/dur. *)
              check_bool "complete events have ts and dur" true
                (List.for_all
                   (fun e ->
                     match Json.member "ph" e with
                     | Some (Json.String "X") ->
                         Json.member "ts" e <> None && Json.member "dur" e <> None
                     | _ -> true)
                   events)
          | Ok _ -> Alcotest.fail "trace is not a JSON array"))

let suite =
  [
    case "disabled is a no-op" test_disabled;
    case "spans nest LIFO" test_nesting_lifo;
    case "exception closes span" test_exception_closes_span;
    case "unclosed spans excluded" test_unclosed_excluded;
    case "Chrome trace roundtrips through the parser" test_write_roundtrip;
  ]
