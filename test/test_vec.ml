open Dbp_util
open Helpers

let test_push_get () =
  let v = Vec.create () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 0" 0 (Vec.get v 0);
  check_int "get 99" (99 * 99) (Vec.get v 99);
  Vec.set v 5 42;
  check_int "set" 42 (Vec.get v 5)

let test_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_raises_invalid "get -1" (fun () -> Vec.get v (-1));
  check_raises_invalid "get 3" (fun () -> Vec.get v 3);
  check_raises_invalid "set 3" (fun () -> Vec.set v 3 0)

let test_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_int "pop" 3 (Vec.pop v);
  check_int "last" 2 (Vec.last v);
  check_int "pop" 2 (Vec.pop v);
  check_int "pop" 1 (Vec.pop v);
  check_raises_invalid "pop empty" (fun () -> Vec.pop v);
  check_raises_invalid "last empty" (fun () -> Vec.last v)

let test_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  check_int "removed" 20 (Vec.swap_remove v 1);
  check_int "length" 3 (Vec.length v);
  check_int "moved last" 40 (Vec.get v 1);
  check_int "remove last" 30 (Vec.swap_remove v 2);
  check_int "length" 2 (Vec.length v)

let test_iteration () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !acc;
  let idx = ref [] in
  Vec.iteri (fun i x -> idx := (i, x) :: !idx) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (3, 4); (2, 3); (1, 2); (0, 1) ] !idx;
  check_int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  check_bool "for_all" true (Vec.for_all (fun x -> x > 0) v);
  Alcotest.(check (option int)) "find_index" (Some 2) (Vec.find_index (fun x -> x = 3) v);
  Alcotest.(check (option int)) "find_index none" None (Vec.find_index (fun x -> x = 9) v)

let test_clear () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  check_bool "cleared" true (Vec.is_empty v);
  Vec.push v 7;
  check_int "reusable" 7 (Vec.get v 0)

let test_clear_keeps_capacity () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  let cap = Vec.capacity v in
  check_bool "grew" true (cap >= 1000);
  Vec.clear v;
  check_int "emptied" 0 (Vec.length v);
  check_int "capacity kept" cap (Vec.capacity v);
  for i = 0 to 999 do
    Vec.push v i
  done;
  (* The whole point of keeping the backing array: refilling to the old
     length must not have grown it. *)
  check_int "no reallocation on refill" cap (Vec.capacity v)

let test_clear_shrink_releases () =
  (* Flash crowd: one huge batch, then a steady trickle. clear_shrink
     must let the capacity come back down instead of pinning the
     high-water block forever (the long-lived daemon leak). *)
  let v = Vec.create () in
  for i = 0 to 99_999 do
    Vec.push v i
  done;
  check_bool "grew past the crowd" true (Vec.capacity v >= 100_000);
  (* Decaying mark: after a handful of small ticks the 4x bound trips. *)
  for _ = 1 to 64 do
    Vec.clear_shrink v;
    for i = 0 to 9 do
      Vec.push v i
    done
  done;
  Vec.clear_shrink v;
  check_bool
    (Printf.sprintf "capacity released (now %d)" (Vec.capacity v))
    true
    (Vec.capacity v <= 64);
  Vec.push v 5;
  check_int "still usable" 5 (Vec.get v 0)

let test_clear_shrink_keeps_steady_state () =
  (* A vector that refills to the same level every tick must never
     reallocate: the mark tracks the steady level, 4x bound never
     trips. *)
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  let cap = Vec.capacity v in
  for _ = 1 to 100 do
    Vec.clear_shrink v;
    for i = 0 to 999 do
      Vec.push v i
    done
  done;
  check_int "steady capacity untouched" cap (Vec.capacity v)

let test_reset () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.reset v;
  check_int "emptied" 0 (Vec.length v);
  check_int "storage released" 0 (Vec.capacity v);
  Vec.push v 9;
  check_int "reusable after reset" 9 (Vec.get v 0)

let test_truncate () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let cap = Vec.capacity v in
  Vec.truncate v 2;
  Alcotest.(check (list int)) "prefix kept" [ 10; 20 ] (Vec.to_list v);
  check_int "capacity unchanged" cap (Vec.capacity v);
  Vec.truncate v 2;
  check_int "no-op at length" 2 (Vec.length v);
  Vec.truncate v 0;
  check_bool "to empty" true (Vec.is_empty v);
  check_raises_invalid "negative" (fun () -> Vec.truncate v (-1));
  check_raises_invalid "past length" (fun () -> Vec.truncate v 1)

let prop_roundtrip =
  qcase ~name:"of_list |> to_list = id"
    (fun l -> Vec.to_list (Vec.of_list l) = l)
    QCheck2.Gen.(list int)

let prop_array_roundtrip =
  qcase ~name:"of_array |> to_array = id"
    (fun l ->
      let a = Array.of_list l in
      Vec.to_array (Vec.of_array a) = a)
    QCheck2.Gen.(list int)

let suite =
  [
    case "push/get/set" test_push_get;
    case "bounds checks" test_bounds;
    case "pop/last" test_pop;
    case "swap_remove" test_swap_remove;
    case "iteration" test_iteration;
    case "clear" test_clear;
    case "clear keeps capacity" test_clear_keeps_capacity;
    case "clear_shrink releases a flash-crowd block" test_clear_shrink_releases;
    case "clear_shrink leaves steady-state reuse alone" test_clear_shrink_keeps_steady_state;
    case "reset" test_reset;
    case "truncate" test_truncate;
    prop_roundtrip;
    prop_array_roundtrip;
  ]
